package device

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPlatformEnumeration(t *testing.T) {
	ResetPlatforms()
	all := Platforms("")
	if len(all) != 4 {
		t.Fatalf("platform count %d, want 4", len(all))
	}
	cuda := Platforms(CUDA)
	if len(cuda) != 1 || cuda[0].Vendor != "NVIDIA" {
		t.Fatalf("CUDA platforms: %+v", cuda)
	}
	ocl := Platforms(OpenCL)
	if len(ocl) != 3 {
		t.Fatalf("OpenCL platform count %d, want 3", len(ocl))
	}
}

func TestFindDevice(t *testing.T) {
	ResetPlatforms()
	d, err := FindDevice(CUDA, "Quadro P5000")
	if err != nil {
		t.Fatal(err)
	}
	if d.Desc.Vendor != "NVIDIA" || d.Framework != CUDA {
		t.Fatalf("unexpected device %+v", d.Desc)
	}
	// The same hardware is also visible through the OpenCL driver — the
	// ICD-loader behaviour of §VII-B3.
	d2, err := FindDevice(OpenCL, "Quadro P5000")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Framework != OpenCL {
		t.Fatal("OpenCL driver must expose its own device handle")
	}
	if _, err := FindDevice(CUDA, "Radeon R9 Nano"); err == nil {
		t.Fatal("AMD hardware must not appear under CUDA")
	}
}

func TestAllDevicesSorted(t *testing.T) {
	ResetPlatforms()
	devs := AllDevices()
	if len(devs) != 6 {
		t.Fatalf("device count %d, want 6", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		a, b := devs[i-1], devs[i]
		if a.Framework > b.Framework || (a.Framework == b.Framework && a.Desc.Name > b.Desc.Name) {
			t.Fatal("devices not sorted")
		}
	}
}

func TestAllocAccountingAndOOM(t *testing.T) {
	d := NewDevice(Descriptor{Name: "tiny", MemoryBytes: 1024, Kind: KindGPU, Cores: 4,
		BandwidthGBs: 1, PeakSPGFLOPS: 1, DPRatio: 1, TransferGBs: 1, BaseAlign: 64}, OpenCL, 2)
	b1, err := Alloc[float64](d, 64) // 512 bytes
	if err != nil {
		t.Fatal(err)
	}
	if d.AllocatedBytes() != 512 {
		t.Fatalf("allocated %d want 512", d.AllocatedBytes())
	}
	if _, err := Alloc[float64](d, 128); err == nil {
		t.Fatal("expected out-of-memory")
	}
	if err := b1.Free(); err != nil {
		t.Fatal(err)
	}
	if d.AllocatedBytes() != 0 {
		t.Fatalf("allocated %d after free", d.AllocatedBytes())
	}
	if err := b1.Free(); err == nil {
		t.Fatal("expected double-free error")
	}
	if _, err := Alloc[float32](d, 0); err == nil {
		t.Fatal("expected error for zero-size allocation")
	}
}

func TestSubBufferStyles(t *testing.T) {
	ResetPlatforms()
	cudaDev, _ := FindDevice(CUDA, "Quadro P5000")
	oclDev, _ := FindDevice(OpenCL, "Radeon R9 Nano")

	cb, err := Alloc[float64](cudaDev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Free()
	// CUDA: arbitrary pointer arithmetic is legal.
	v, err := cb.SubCUDA(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	v.Data()[0] = 42
	if cb.Data()[3] != 42 {
		t.Fatal("sub-buffer does not alias parent")
	}
	// CUDA-style sub-buffers are rejected on OpenCL buffers and vice versa.
	ob, err := Alloc[float64](oclDev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Free()
	if _, err := ob.SubCUDA(0, 10); err == nil {
		t.Fatal("pointer arithmetic must be rejected on OpenCL buffers")
	}
	if _, err := cb.SubOpenCL(0, 10); err == nil {
		t.Fatal("clCreateSubBuffer must be rejected on CUDA buffers")
	}
	// OpenCL: origin must satisfy base alignment (256 bytes = 32 float64).
	if _, err := ob.SubOpenCL(3, 10); err == nil {
		t.Fatal("misaligned OpenCL sub-buffer must be rejected")
	}
	s, err := ob.SubOpenCL(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.Data()[0] = 7
	if ob.Data()[32] != 7 {
		t.Fatal("OpenCL sub-buffer does not alias parent")
	}
	// Out-of-range views fail.
	if _, err := cb.SubCUDA(995, 10); err == nil {
		t.Fatal("out-of-range sub-buffer must fail")
	}
	// Sub-buffers cannot be freed.
	if err := v.Free(); err == nil {
		t.Fatal("freeing a sub-buffer must fail")
	}
}

func TestLaunchKernelExecutesAllItems(t *testing.T) {
	ResetPlatforms()
	d, _ := FindDevice(OpenCL, "FirePro S9170")
	q := d.NewQueue(true)
	const n = 1000
	var hits [n]int32
	var padded atomic.Int64
	err := q.LaunchKernel(Launch{Global: n, Local: 64}, Cost{Flops: 1000}, func(item int) {
		if item >= n {
			padded.Add(1)
			return
		}
		atomic.AddInt32(&hits[item], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("work-item %d executed %d times", i, h)
		}
	}
	// 1000 padded to 1024: 24 padding invocations.
	if padded.Load() != 24 {
		t.Fatalf("padding invocations %d want 24", padded.Load())
	}
	if q.Launches() != 1 {
		t.Fatalf("launch count %d", q.Launches())
	}
	if q.ModeledTime() <= 0 || q.HostTime() <= 0 {
		t.Fatal("clocks did not advance")
	}
}

func TestLaunchKernelErrors(t *testing.T) {
	ResetPlatforms()
	d, _ := FindDevice(OpenCL, "FirePro S9170")
	q := d.NewQueue(true)
	if err := q.LaunchKernel(Launch{Global: 0, Local: 64}, Cost{}, func(int) {}); err == nil {
		t.Fatal("expected error for zero global size")
	}
	if err := q.LaunchKernel(Launch{Global: 10, Local: 0}, Cost{}, func(int) {}); err == nil {
		t.Fatal("expected error for zero work-group size")
	}
}

func TestCopiesRoundTripAndAccount(t *testing.T) {
	ResetPlatforms()
	d, _ := FindDevice(OpenCL, "Radeon R9 Nano")
	q := d.NewQueue(false)
	b, err := Alloc[float64](d, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	src := make([]float64, 100)
	for i := range src {
		src[i] = float64(i)
	}
	if err := CopyToDevice(q, b, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 100)
	if err := CopyFromDevice(q, dst, b); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if q.BytesTransferred() != 1600 {
		t.Fatalf("bytes transferred %d want 1600", q.BytesTransferred())
	}
	// Oversized copies fail.
	if err := CopyToDevice(q, b, make([]float64, 101)); err == nil {
		t.Fatal("expected error for oversized host→device copy")
	}
	if err := CopyFromDevice(q, make([]float64, 101), b); err == nil {
		t.Fatal("expected error for oversized device→host copy")
	}
}

func TestModeledTimeShape(t *testing.T) {
	// The modeled clock must reproduce the qualitative Fig. 4 behaviour:
	// throughput (flops/modeled time) grows with problem size and a GPU
	// beats the modeled CPU device at large sizes.
	ResetPlatforms()
	gpu, _ := FindDevice(OpenCL, "Radeon R9 Nano")

	tput := func(items int) float64 {
		q := gpu.NewQueue(true)
		flops := float64(items) * 17
		bytes := float64(items) * 12
		if err := q.LaunchKernel(Launch{Global: items, Local: 256},
			Cost{Flops: flops, Bytes: bytes, GroupSize: 256}, func(int) {}); err != nil {
			t.Fatal(err)
		}
		return flops / q.ModeledTime().Seconds()
	}
	small := tput(1_000)
	mid := tput(100_000)
	large := tput(10_000_000)
	if !(small < mid && mid < large) {
		t.Fatalf("throughput not increasing: %g, %g, %g", small, mid, large)
	}
	// Large-problem throughput must stay below the theoretical peak.
	if large >= gpu.Desc.PeakSPGFLOPS*1e9 {
		t.Fatalf("modeled throughput %g exceeds peak", large)
	}
}

func TestModeledDoublePrecisionSlower(t *testing.T) {
	ResetPlatforms()
	gpu, _ := FindDevice(OpenCL, "Quadro P5000")
	run := func(single bool) time.Duration {
		q := gpu.NewQueue(single)
		// Compute-bound kernel: no bytes.
		if err := q.LaunchKernel(Launch{Global: 1 << 20, Local: 256},
			Cost{Flops: 1e9, GroupSize: 256}, func(int) {}); err != nil {
			t.Fatal(err)
		}
		return q.ModeledTime()
	}
	if run(false) <= run(true) {
		t.Fatal("double precision must be modeled slower than single on a GPU")
	}
}

func TestModeledCUDAFasterThanOpenCLOnNVIDIA(t *testing.T) {
	ResetPlatforms()
	cudaDev, _ := FindDevice(CUDA, "Quadro P5000")
	oclDev, _ := FindDevice(OpenCL, "Quadro P5000")
	run := func(d *Device) time.Duration {
		q := d.NewQueue(true)
		if err := q.LaunchKernel(Launch{Global: 1 << 20, Local: 256},
			Cost{Flops: 1e9, GroupSize: 256}, func(int) {}); err != nil {
			t.Fatal(err)
		}
		return q.ModeledTime()
	}
	if run(cudaDev) >= run(oclDev) {
		t.Fatal("CUDA must be modeled faster than OpenCL on the same NVIDIA device")
	}
}

func TestFission(t *testing.T) {
	ResetPlatforms()
	cpu, _ := FindDevice(OpenCL, "Xeon E5-2680v4 x2")
	sub, err := cpu.Fission(8)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Desc.Cores != 8 {
		t.Fatalf("fissioned cores %d", sub.Desc.Cores)
	}
	if sub.Parallelism() > 8 {
		t.Fatalf("fissioned parallelism %d", sub.Parallelism())
	}
	if _, err := cpu.Fission(0); err == nil {
		t.Fatal("expected error for zero compute units")
	}
	if _, err := cpu.Fission(1000); err == nil {
		t.Fatal("expected error for too many compute units")
	}
}

func TestMaxPatternsPerGroup(t *testing.T) {
	// Codon models on AMD GPUs must reduce patterns per work-group
	// (§VII-B1): 61 states double precision needs 976 B/pattern of local
	// memory; 32 KiB holds only 33 patterns.
	got := RadeonR9Nano.MaxPatternsPerGroup(128, 61, false)
	if got >= 128 {
		t.Fatalf("AMD codon work-group not reduced: %d", got)
	}
	want := RadeonR9Nano.LocalMemBytes / LocalMemPerPattern(61, false)
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	// NVIDIA has more local memory, so the reduction is milder.
	if nv := QuadroP5000.MaxPatternsPerGroup(128, 61, false); nv <= got {
		t.Fatalf("NVIDIA (%d) should allow more patterns than AMD (%d)", nv, got)
	}
	// Nucleotide single precision fits easily.
	if got := RadeonR9Nano.MaxPatternsPerGroup(256, 4, true); got != 256 {
		t.Fatalf("nucleotide work-group wrongly reduced to %d", got)
	}
	// CPU devices have no local-memory constraint.
	if got := XeonE5v4Dual.MaxPatternsPerGroup(1024, 61, false); got != 1024 {
		t.Fatalf("CPU work-group wrongly reduced to %d", got)
	}
}

func TestKindString(t *testing.T) {
	if KindGPU.String() != "GPU" || KindCPU.String() != "CPU" || KindAccelerator.String() != "Accelerator" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestQueueResetTimers(t *testing.T) {
	ResetPlatforms()
	d, _ := FindDevice(OpenCL, "FirePro S9170")
	q := d.NewQueue(true)
	if err := q.LaunchKernel(Launch{Global: 100, Local: 32}, Cost{Flops: 100}, func(int) {}); err != nil {
		t.Fatal(err)
	}
	q.ResetTimers()
	if q.ModeledTime() != 0 || q.HostTime() != 0 || q.Launches() != 0 || q.BytesTransferred() != 0 {
		t.Fatal("timers not reset")
	}
}

func TestDryRunSkipsExecutionButAdvancesModel(t *testing.T) {
	ResetPlatforms()
	d, _ := FindDevice(OpenCL, "FirePro S9170")
	q := d.NewQueue(true)
	q.SetDryRun(true)
	executed := false
	if err := q.LaunchKernel(Launch{Global: 100, Local: 32}, Cost{Flops: 1e6}, func(int) {
		executed = true
	}); err != nil {
		t.Fatal(err)
	}
	if executed {
		t.Fatal("dry run must not execute kernel bodies")
	}
	if q.ModeledTime() <= 0 {
		t.Fatal("dry run must advance the modeled clock")
	}
	if q.Launches() != 1 {
		t.Fatalf("launch count %d", q.Launches())
	}
	// Back to normal execution.
	q.SetDryRun(false)
	if err := q.LaunchKernel(Launch{Global: 10, Local: 10}, Cost{Flops: 10}, func(int) {
		executed = true
	}); err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("execution must resume after dry run is disabled")
	}
}
