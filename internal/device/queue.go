package device

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gobeagle/internal/trace"
)

// Cost describes the useful work of one kernel launch for the performance
// model: effective floating-point operations and global-memory traffic.
type Cost struct {
	Flops float64
	Bytes float64
	// Efficiency scales the device's peak rate for this kernel build;
	// e.g. the no-FMA kernel variant on FMA hardware runs below peak
	// (Table IV). Zero means 1.
	Efficiency float64
	// GroupSize is the work-group size, used to charge per-group scheduling
	// overhead. Zero charges per work-item (conservative).
	GroupSize int
}

// Launch is the execution geometry of a kernel: total work-items and
// work-group size. The global size is padded up to a multiple of the group
// size, as both CUDA and OpenCL require; padded items invoke the body with
// indices ≥ Global, which kernel bodies must guard against, and their waste
// is charged by the performance model.
type Launch struct {
	Global int // useful work-items
	Local  int // work-group size in work-items
}

// Queue is an in-order command queue on one device. It accumulates both
// measured host wall time and modeled device time for everything enqueued.
type Queue struct {
	dev          *Device
	single       bool // single-precision kernels
	dryRun       atomic.Bool
	modeledNanos atomic.Int64
	hostNanos    atomic.Int64
	launches     atomic.Int64
	transfers    atomic.Int64
	bytesMoved   atomic.Int64
	tr           *trace.Tracer
	lane         int32
}

// SetTracer attaches a span tracer. Kernel and transfer spans are stamped on
// the queue's modeled device clock (which starts at zero), not host wall
// time, so the trace shows what the performance model charged each launch —
// the device process in the exported timeline is labeled accordingly.
func (q *Queue) SetTracer(tr *trace.Tracer, lane int32) {
	q.tr = tr
	q.lane = lane
}

// SetDryRun toggles dry-run mode: kernel launches charge the modeled clock
// without executing their bodies. Benchmark sweeps use this for very large
// problem sizes after the identical configuration has been executed and
// verified for real at smaller sizes; it must never be enabled when results
// will be read back.
func (q *Queue) SetDryRun(v bool) { q.dryRun.Store(v) }

// NewQueue creates a command queue; single selects the floating-point format
// assumed by the performance model.
func (d *Device) NewQueue(single bool) *Queue {
	return &Queue{dev: d, single: single}
}

// Device returns the queue's device.
func (q *Queue) Device() *Device { return q.dev }

// ModeledTime returns the accumulated modeled device time.
func (q *Queue) ModeledTime() time.Duration {
	return time.Duration(q.modeledNanos.Load())
}

// HostTime returns the accumulated measured host execution time.
func (q *Queue) HostTime() time.Duration {
	return time.Duration(q.hostNanos.Load())
}

// Launches returns the number of kernels launched.
func (q *Queue) Launches() int64 { return q.launches.Load() }

// BytesTransferred returns total host↔device copy traffic.
func (q *Queue) BytesTransferred() int64 { return q.bytesMoved.Load() }

// ResetTimers zeroes the accumulated timing counters.
func (q *Queue) ResetTimers() {
	q.modeledNanos.Store(0)
	q.hostNanos.Store(0)
	q.launches.Store(0)
	q.transfers.Store(0)
	q.bytesMoved.Store(0)
}

// LaunchKernel executes body(workItem) for every work-item, work-group by
// work-group across the device's compute-unit pool, and charges the launch
// to both clocks. Bodies see padded indices ≥ l.Global and must return
// without effect for them.
func (q *Queue) LaunchKernel(l Launch, c Cost, body func(workItem int)) error {
	if l.Global <= 0 {
		return errors.New("device: launch with non-positive global size")
	}
	if l.Local <= 0 {
		return fmt.Errorf("device: launch with non-positive work-group size %d", l.Local)
	}
	groups := (l.Global + l.Local - 1) / l.Local
	padded := groups * l.Local

	if !q.dryRun.Load() {
		start := time.Now()
		q.dev.parallelFor(groups, func(g int) {
			base := g * l.Local
			for i := 0; i < l.Local; i++ {
				body(base + i)
			}
		})
		q.hostNanos.Add(int64(time.Since(start)))
	}
	charge := int64(q.modelKernel(c, padded, l.Global))
	end := q.modeledNanos.Add(charge)
	q.launches.Add(1)
	if q.tr.Enabled() {
		q.tr.Record(trace.Span{Kind: trace.KindKernel, Lane: q.lane,
			Start: end - charge, Dur: charge, Arg0: int64(l.Global), Arg1: int64(groups)})
	}
	return nil
}

// CopyToDevice moves host data into a device buffer.
func CopyToDevice[T Elem](q *Queue, dst *Buffer[T], src []T) error {
	if dst.data == nil {
		return errors.New("device: copy to freed buffer")
	}
	if len(src) > len(dst.data) {
		return fmt.Errorf("device: copy of %d elements into buffer of %d", len(src), len(dst.data))
	}
	start := time.Now()
	copy(dst.data, src)
	q.hostNanos.Add(int64(time.Since(start)))
	chargeTransfer(q, len(src), dst)
	return nil
}

// CopyFromDevice moves device data back to the host.
func CopyFromDevice[T Elem](q *Queue, dst []T, src *Buffer[T]) error {
	if src.data == nil {
		return errors.New("device: copy from freed buffer")
	}
	if len(dst) > len(src.data) {
		return fmt.Errorf("device: copy of %d elements from buffer of %d", len(dst), len(src.data))
	}
	start := time.Now()
	copy(dst, src.data)
	q.hostNanos.Add(int64(time.Since(start)))
	chargeTransfer(q, len(dst), src)
	return nil
}

func chargeTransfer[T Elem](q *Queue, n int, b *Buffer[T]) {
	var zero T
	bytes := int64(n) * int64(elemSize(zero))
	q.bytesMoved.Add(bytes)
	q.transfers.Add(1)
	charge := int64(q.modelTransfer(float64(bytes)))
	end := q.modeledNanos.Add(charge)
	if q.tr.Enabled() {
		q.tr.Record(trace.Span{Kind: trace.KindTransfer, Lane: q.lane,
			Start: end - charge, Dur: charge, Arg0: bytes})
	}
}
