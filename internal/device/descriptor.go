// Package device is the accelerator substrate: a simulated parallel-device
// framework with the architecture of CUDA and OpenCL. It provides device
// enumeration through an installable-client-driver-style loader, explicit
// device buffers with host↔device copies, sub-buffer addressing in both the
// CUDA style (pointer arithmetic) and the OpenCL style (sub-buffer objects
// with alignment rules), command queues, and work-group kernel launches.
//
// Kernels really execute — work-items run the shared kernel bodies from
// internal/kernels on host goroutines standing in for compute units — so all
// correctness is end-to-end testable. Because this machine has no GPU, each
// queue additionally accumulates *modeled* execution time from a roofline
// performance model parameterized by the published specifications of the
// paper's devices (Table II), which is what the benchmark harness reports
// for GPU devices; CPU-class devices report measured wall time.
package device

import "fmt"

// Kind classifies a compute device.
type Kind int

// Device kinds.
const (
	KindGPU Kind = iota
	KindCPU
	KindAccelerator // manycore accelerator (Xeon Phi class)
)

// String returns a human-readable device kind.
func (k Kind) String() string {
	switch k {
	case KindGPU:
		return "GPU"
	case KindCPU:
		return "CPU"
	case KindAccelerator:
		return "Accelerator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Descriptor holds the hardware characteristics that drive both the
// simulated execution (local memory limits, FMA availability) and the
// roofline performance model (cores, bandwidth, peak throughput).
type Descriptor struct {
	Name           string
	Vendor         string
	Kind           Kind
	Cores          int     // processing cores / shader units
	MemoryBytes    int64   // global memory
	BandwidthGBs   float64 // device global memory bandwidth, GB/s
	PeakSPGFLOPS   float64 // theoretical single-precision peak
	DPRatio        float64 // double-precision peak as a fraction of SP
	LocalMemBytes  int     // local/shared memory per compute unit
	SupportsFMA    bool    // fast fused multiply–add (FP_FAST_FMA)
	BaseAlign      int     // sub-buffer origin alignment requirement, bytes
	LaunchOverhead float64 // per-kernel-launch latency, microseconds
	TransferGBs    float64 // host↔device transfer bandwidth, GB/s
}

// The three GPUs of the paper's Table II, plus the two CPU-class platforms
// of Table I and the Xeon Phi 7210 used in §VIII.
var (
	// QuadroP5000 is the NVIDIA Quadro P5000 (Table II column 1).
	QuadroP5000 = Descriptor{
		Name: "Quadro P5000", Vendor: "NVIDIA", Kind: KindGPU,
		Cores: 2560, MemoryBytes: 16 << 30, BandwidthGBs: 288,
		PeakSPGFLOPS: 8900, DPRatio: 1.0 / 32,
		LocalMemBytes: 96 << 10, SupportsFMA: true, BaseAlign: 256,
		LaunchOverhead: 8, TransferGBs: 12,
	}
	// RadeonR9Nano is the AMD Radeon R9 Nano (Table II column 2).
	RadeonR9Nano = Descriptor{
		Name: "Radeon R9 Nano", Vendor: "AMD", Kind: KindGPU,
		Cores: 4096, MemoryBytes: 4 << 30, BandwidthGBs: 512,
		PeakSPGFLOPS: 8192, DPRatio: 1.0 / 16,
		LocalMemBytes: 32 << 10, SupportsFMA: true, BaseAlign: 256,
		LaunchOverhead: 12, TransferGBs: 12,
	}
	// FireProS9170 is the AMD FirePro S9170 (Table II column 3).
	FireProS9170 = Descriptor{
		Name: "FirePro S9170", Vendor: "AMD", Kind: KindGPU,
		Cores: 2816, MemoryBytes: 32 << 30, BandwidthGBs: 320,
		PeakSPGFLOPS: 5240, DPRatio: 1.0 / 2,
		LocalMemBytes: 32 << 10, SupportsFMA: true, BaseAlign: 256,
		LaunchOverhead: 12, TransferGBs: 12,
	}
	// XeonE5v4Dual is the dual Intel Xeon E5-2680v4 host of system 2
	// (Table I): 2×14 cores, 56 hardware threads at 2.4 GHz.
	XeonE5v4Dual = Descriptor{
		Name: "Xeon E5-2680v4 x2", Vendor: "Intel", Kind: KindCPU,
		Cores: 56, MemoryBytes: 256 << 30, BandwidthGBs: 153,
		PeakSPGFLOPS: 2150, DPRatio: 0.5,
		LocalMemBytes: 0, SupportsFMA: true, BaseAlign: 64,
		LaunchOverhead: 2, TransferGBs: 50,
	}
	// XeonPhi7210 is the Intel Xeon Phi 7210 manycore CPU of §VIII.
	XeonPhi7210 = Descriptor{
		Name: "Xeon Phi 7210", Vendor: "Intel", Kind: KindAccelerator,
		Cores: 256, MemoryBytes: 16 << 30, BandwidthGBs: 400,
		PeakSPGFLOPS: 5324, DPRatio: 0.5,
		LocalMemBytes: 0, SupportsFMA: true, BaseAlign: 64,
		LaunchOverhead: 4, TransferGBs: 50,
	}
)

// PeakGFLOPS returns the theoretical peak throughput at the given precision:
// the single-precision peak, derated by DPRatio for double precision. Every
// consumer of the peak — the roofline model and default load-balancing
// shares alike — must go through this so a 1/32-DP-ratio consumer GPU is
// never weighted by its single-precision figure in a double-precision run.
func (d *Descriptor) PeakGFLOPS(single bool) float64 {
	if single {
		return d.PeakSPGFLOPS
	}
	return d.PeakSPGFLOPS * d.DPRatio
}

// LocalMemPerPattern returns the local-memory bytes one pattern of a
// likelihood work-group consumes (child partials staging for both children),
// used to derive the per-device patterns-per-work-group limit that §VII-B1
// describes for codon models on AMD GPUs.
func LocalMemPerPattern(stateCount int, single bool) int {
	elem := 8
	if single {
		elem = 4
	}
	return 2 * stateCount * elem
}

// MaxPatternsPerGroup returns how many patterns fit in one work-group given
// the device's local memory, or the requested size when the device has no
// local-memory constraint (CPU-class devices, which let the compiler manage
// caching, §VII-B2).
func (d *Descriptor) MaxPatternsPerGroup(requested, stateCount int, single bool) int {
	if d.LocalMemBytes == 0 {
		return requested
	}
	per := LocalMemPerPattern(stateCount, single)
	max := d.LocalMemBytes / per
	if max < 1 {
		max = 1
	}
	if requested < max {
		return requested
	}
	return max
}
