package device

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// FrameworkName identifies a parallel computing framework.
type FrameworkName string

// The two frameworks the library shares kernels between.
const (
	CUDA   FrameworkName = "CUDA"
	OpenCL FrameworkName = "OpenCL"
)

// Platform is an OpenCL-style platform: one vendor driver exposing a set of
// devices. The CUDA framework exposes a single NVIDIA platform.
type Platform struct {
	Framework FrameworkName
	Vendor    string // driver vendor, e.g. "NVIDIA", "AMD", "Intel"
	Version   string // driver version string
	devices   []*Device
}

// Devices returns the platform's devices.
func (p *Platform) Devices() []*Device { return p.devices }

// icd is the installable-client-driver-style loader state: every registered
// platform is visible, so multiple driver implementations for the same
// hardware can coexist and be selected explicitly (§VII-B3).
var icd struct {
	mu        sync.Mutex
	platforms []*Platform
}

// RegisterPlatform installs a platform into the ICD loader.
func RegisterPlatform(p *Platform) {
	icd.mu.Lock()
	defer icd.mu.Unlock()
	icd.platforms = append(icd.platforms, p)
}

// Platforms returns all installed platforms, optionally filtered by
// framework ("" for all).
func Platforms(fw FrameworkName) []*Platform {
	icd.mu.Lock()
	defer icd.mu.Unlock()
	var out []*Platform
	for _, p := range icd.platforms {
		if fw == "" || p.Framework == fw {
			out = append(out, p)
		}
	}
	return out
}

// ResetPlatforms clears the ICD registry and reinstalls the default drivers;
// used by tests and by the default initialization.
func ResetPlatforms() {
	icd.mu.Lock()
	icd.platforms = nil
	icd.mu.Unlock()
	registerDefaultPlatforms()
}

// NewDevice creates a simulated device owned by a framework driver. The
// hostParallelism bounds how many host goroutines stand in for the device's
// compute units (0 = GOMAXPROCS).
func NewDevice(desc Descriptor, fw FrameworkName, hostParallelism int) *Device {
	if hostParallelism <= 0 {
		hostParallelism = runtime.GOMAXPROCS(0)
	}
	return &Device{
		Desc:        desc,
		Framework:   fw,
		parallelism: hostParallelism,
	}
}

// registerDefaultPlatforms installs the simulated drivers matching the
// paper's two benchmark systems (Table I): a CUDA driver for the NVIDIA GPU,
// OpenCL drivers from NVIDIA, AMD and Intel.
func registerDefaultPlatforms() {
	RegisterPlatform(&Platform{
		Framework: CUDA, Vendor: "NVIDIA", Version: "375.26",
		devices: []*Device{NewDevice(QuadroP5000, CUDA, 0)},
	})
	RegisterPlatform(&Platform{
		Framework: OpenCL, Vendor: "NVIDIA", Version: "375.26",
		devices: []*Device{NewDevice(QuadroP5000, OpenCL, 0)},
	})
	RegisterPlatform(&Platform{
		Framework: OpenCL, Vendor: "AMD", Version: "1912.5",
		devices: []*Device{
			NewDevice(RadeonR9Nano, OpenCL, 0),
			NewDevice(FireProS9170, OpenCL, 0),
		},
	})
	RegisterPlatform(&Platform{
		Framework: OpenCL, Vendor: "Intel", Version: "1.2.0",
		devices: []*Device{
			NewDevice(XeonE5v4Dual, OpenCL, 0),
			NewDevice(XeonPhi7210, OpenCL, 0),
		},
	})
}

func init() { registerDefaultPlatforms() }

// FindDevice locates a device by framework and name across all installed
// platforms.
func FindDevice(fw FrameworkName, name string) (*Device, error) {
	for _, p := range Platforms(fw) {
		for _, d := range p.devices {
			if d.Desc.Name == name {
				return d, nil
			}
		}
	}
	return nil, fmt.Errorf("device: no %s device named %q", fw, name)
}

// AllDevices lists every installed device sorted by framework then name,
// for resource enumeration.
func AllDevices() []*Device {
	var out []*Device
	for _, p := range Platforms("") {
		out = append(out, p.devices...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Framework != out[j].Framework {
			return out[i].Framework < out[j].Framework
		}
		return out[i].Desc.Name < out[j].Desc.Name
	})
	return out
}
