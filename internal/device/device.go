package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Device is one simulated compute device. Kernels launched on its queues
// execute on a bounded pool of host goroutines standing in for compute
// units; memory lives in explicitly allocated device buffers.
type Device struct {
	Desc        Descriptor
	Framework   FrameworkName
	parallelism int   // host goroutines emulating compute units
	allocated   int64 // bytes currently allocated (atomic)
}

// Parallelism returns the host-side execution width.
func (d *Device) Parallelism() int { return d.parallelism }

// AllocatedBytes returns the bytes currently allocated on the device.
func (d *Device) AllocatedBytes() int64 { return atomic.LoadInt64(&d.allocated) }

// Fission returns a sub-device restricted to n compute units, the OpenCL
// device-fission feature the paper uses for the multicore scaling benchmark
// (Fig. 5). The sub-device shares no allocation accounting with its parent.
func (d *Device) Fission(n int) (*Device, error) {
	if n < 1 || n > d.Desc.Cores {
		return nil, fmt.Errorf("device: cannot fission %d of %d compute units", n, d.Desc.Cores)
	}
	sub := d.Desc
	sub.Cores = n
	// Peak compute scales with the granted compute units; memory bandwidth
	// is shared machine-wide and left unscaled (the saturation behaviour of
	// Fig. 5 comes from exactly this asymmetry).
	sub.PeakSPGFLOPS = d.Desc.PeakSPGFLOPS * float64(n) / float64(d.Desc.Cores)
	sub.Name = fmt.Sprintf("%s (%d CU)", d.Desc.Name, n)
	// Memory bandwidth on CPU-class devices scales sublinearly with cores
	// and saturates; the perf model handles that, so the descriptor keeps
	// full bandwidth.
	par := n
	if par > d.parallelism {
		par = d.parallelism
	}
	return NewDevice(sub, d.Framework, par), nil
}

// Elem constrains the element types device buffers can hold.
type Elem interface {
	~float32 | ~float64 | ~int32
}

// Buffer is a typed region of device memory. Host code must move data
// through the explicit copy calls; kernels access buffers directly.
type Buffer[T Elem] struct {
	dev    *Device
	data   []T
	origin int  // element offset into the parent allocation
	sub    bool // true for sub-buffer views
}

// Alloc allocates a device buffer of n elements.
func Alloc[T Elem](d *Device, n int) (*Buffer[T], error) {
	if n <= 0 {
		return nil, errors.New("device: allocation size must be positive")
	}
	var zero T
	bytes := int64(n) * int64(elemSize(zero))
	if atomic.AddInt64(&d.allocated, bytes) > d.Desc.MemoryBytes {
		atomic.AddInt64(&d.allocated, -bytes)
		return nil, fmt.Errorf("device: out of memory on %s (%d bytes requested, %d in use, %d total)",
			d.Desc.Name, bytes, d.AllocatedBytes(), d.Desc.MemoryBytes)
	}
	return &Buffer[T]{dev: d, data: make([]T, n)}, nil
}

func elemSize[T Elem](v T) int {
	switch any(v).(type) {
	case float32, int32:
		return 4
	default:
		return 8
	}
}

// Free releases the buffer's memory accounting. Freeing a sub-buffer is an
// error; freeing twice is an error.
func (b *Buffer[T]) Free() error {
	if b.sub {
		return errors.New("device: cannot free a sub-buffer view")
	}
	if b.data == nil {
		return errors.New("device: double free")
	}
	var zero T
	atomic.AddInt64(&b.dev.allocated, -int64(len(b.data))*int64(elemSize(zero)))
	b.data = nil
	return nil
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Data exposes the raw storage to kernel launches. Host code outside kernel
// bodies must use the copy calls instead.
func (b *Buffer[T]) Data() []T { return b.data }

// SubCUDA returns a view of [origin, origin+n) using CUDA-style pointer
// arithmetic: any element offset is legal (§VII-A).
func (b *Buffer[T]) SubCUDA(origin, n int) (*Buffer[T], error) {
	if b.dev.Framework != CUDA {
		return nil, fmt.Errorf("device: pointer-arithmetic sub-buffers require the CUDA framework, not %s", b.dev.Framework)
	}
	return b.subView(origin, n)
}

// SubOpenCL returns a view of [origin, origin+n) in the manner of
// clCreateSubBuffer: the byte origin must be aligned to the device's base
// address alignment (§VII-A).
func (b *Buffer[T]) SubOpenCL(origin, n int) (*Buffer[T], error) {
	if b.dev.Framework != OpenCL {
		return nil, fmt.Errorf("device: clCreateSubBuffer requires the OpenCL framework, not %s", b.dev.Framework)
	}
	var zero T
	if byteOrigin := origin * elemSize(zero); byteOrigin%b.dev.Desc.BaseAlign != 0 {
		return nil, fmt.Errorf("device: sub-buffer origin %d bytes violates %d-byte base alignment of %s",
			byteOrigin, b.dev.Desc.BaseAlign, b.dev.Desc.Name)
	}
	return b.subView(origin, n)
}

func (b *Buffer[T]) subView(origin, n int) (*Buffer[T], error) {
	if b.data == nil {
		return nil, errors.New("device: sub-buffer of freed buffer")
	}
	if origin < 0 || n <= 0 || origin+n > len(b.data) {
		return nil, fmt.Errorf("device: sub-buffer [%d,%d) out of range of %d elements", origin, origin+n, len(b.data))
	}
	return &Buffer[T]{dev: b.dev, data: b.data[origin : origin+n], origin: b.origin + origin, sub: true}, nil
}

// parallelFor runs groups [0, groups) across the device's host-goroutine
// pool, invoking run(group) for each.
func (d *Device) parallelFor(groups int, run func(group int)) {
	workers := d.parallelism
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		for g := 0; g < groups; g++ {
			run(g)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				g := int(atomic.AddInt64(&next, 1))
				if g >= groups {
					return
				}
				run(g)
			}
		}()
	}
	wg.Wait()
}
