package benchmarks

import (
	"math"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
	"gobeagle/internal/flops"
)

// CPUModel is the analytic throughput model for the CPU implementations on
// the paper's reference host (dual Xeon E5-2680v4, Table I system 2). The
// structure is first-principles — per-thread compute rate, shared memory
// bandwidth, cache capacity, and per-strategy dispatch overheads — and four
// constants are calibrated once against Table III (noted below); everything
// else follows from the hardware descriptor.
type CPUModel struct {
	Desc device.Descriptor
	// KernelEfficiency is the fraction of per-thread peak the effective-FLOPS
	// measure credits the serial kernel with. Calibrated: Table III's serial
	// column (35.8 GFLOPS) against the E5-2680v4 per-thread peak (38.4).
	KernelEfficiency float64
	// L3Bytes is the combined last-level cache; beyond it the serial rate
	// degrades (Table III, 64–128 tips).
	L3Bytes float64
	// CacheFloor is the serial rate fraction retained when the working set
	// far exceeds cache. Calibrated to Table III's 64-tip row.
	CacheFloor float64
	// DRAMFraction is the fraction of the kernels' nominal traffic that
	// reaches DRAM (the rest hits cache); sets where multithreaded scaling
	// saturates (Fig. 5, ≈27 threads).
	DRAMFraction float64
	// ThreadCreateNs is the per-thread create+join cost charged to the
	// thread-create strategy on every operation (§VI-B).
	ThreadCreateNs float64
	// PoolDispatchNs is the per-chunk dispatch cost of the persistent
	// thread pool (§VI-C).
	PoolDispatchNs float64
	// FutureOverheadFrac is the per-operation serialization overhead of the
	// futures strategy, as a fraction of one serial operation (§VI-A).
	FutureOverheadFrac float64
	// SSESpeedup is the 4-state vectorized kernel's gain over the plain
	// serial kernel at equal precision.
	SSESpeedup float64
	// BandwidthEff is the fraction of the descriptor's peak memory
	// bandwidth this code actually achieves on the platform (1.0 for the
	// Xeon; far less on the un-tuned Xeon Phi, §VIII-A1).
	BandwidthEff float64
}

// DefaultCPUModel returns the model for the paper's system 2.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		Desc:               device.XeonE5v4Dual,
		KernelEfficiency:   0.93,
		L3Bytes:            50e6,
		CacheFloor:         0.40,
		DRAMFraction:       0.20,
		ThreadCreateNs:     1000,
		PoolDispatchNs:     150,
		FutureOverheadFrac: 0.15,
		SSESpeedup:         1.6,
		BandwidthEff:       1.0,
	}
}

// workingSetBytes is the resident partials footprint of one evaluation.
func (m CPUModel) workingSetBytes(p *Problem, single bool) float64 {
	elem := 8.0
	if single {
		elem = 4
	}
	return float64(p.Tree.NodeCount()) * float64(p.Dims.PartialsLen()) * elem
}

// stateEfficiencyExp controls how per-thread kernel throughput falls with
// the state count: larger state spaces stress registers and cache lines and
// defeat the 4-wide vector paths. Calibrated against Fig. 4's threaded
// series (≈330 GFLOPS nucleotide vs ≈110 GFLOPS codon on the dual Xeon).
const stateEfficiencyExp = 0.85

// SerialRateGF returns the modeled single-thread throughput in effective
// GFLOPS, including the cache-capacity degradation on large trees and the
// state-count efficiency falloff.
func (m CPUModel) SerialRateGF(p *Problem, single bool) float64 {
	base := m.Desc.PeakSPGFLOPS / float64(m.Desc.Cores) * m.KernelEfficiency
	if !single {
		base *= m.Desc.DPRatio
	}
	if s := float64(p.Dims.StateCount); s > 4 {
		base *= math.Pow(4/s, stateEfficiencyExp)
	}
	ws := m.workingSetBytes(p, single)
	r := ws / m.L3Bytes
	factor := m.CacheFloor + (1-m.CacheFloor)/(1+math.Pow(r, 4))
	return base * factor
}

// opDRAMSeconds is the modeled DRAM-bandwidth floor of one operation when
// every hardware thread participates. When the working set overflows the
// last-level cache, a growing share of the nominal traffic reaches DRAM,
// which is what pulls the threaded throughput down again on 128-tip trees
// (Table III).
func (m CPUModel) opDRAMSeconds(p *Problem, single bool) float64 {
	elem := 8.0
	if single {
		elem = 4
	}
	ws := m.workingSetBytes(p, single)
	r := ws / (2.5 * m.L3Bytes)
	frac := m.DRAMFraction * (1 + r*r*r*r)
	if frac > 0.78 {
		frac = 0.78
	}
	bytes := 3 * float64(p.Dims.StateCount) * elem *
		float64(p.Dims.PatternCount) * float64(p.Dims.CategoryCount) * frac
	return bytes / (m.Desc.BandwidthGBs * m.BandwidthEff * 1e9)
}

// EvalTime returns the modeled duration of one full-tree evaluation of the
// partial-likelihoods function under the given CPU strategy with w threads.
func (m CPUModel) EvalTime(mode cpuimpl.Mode, w int, p *Problem, single bool) time.Duration {
	if w < 1 {
		w = 1
	}
	rate := m.SerialRateGF(p, single) * 1e9
	if mode == cpuimpl.SSE && p.Dims.StateCount == 4 {
		rate *= m.SSESpeedup
	}
	opSec := flops.PartialsOp(p.Dims) / rate
	nOps := float64(p.OpCount())
	bwSec := m.opDRAMSeconds(p, single)

	var total float64
	switch mode {
	case cpuimpl.Serial, cpuimpl.SSE:
		total = nOps * opSec
	case cpuimpl.Futures:
		// Concurrency only across independent operations of each level;
		// each operation remains single-threaded, plus a per-operation
		// spawn/serialization cost.
		for _, width := range p.LevelWidths() {
			total += math.Ceil(float64(width)/float64(w)) * opSec
		}
		total += nOps * m.FutureOverheadFrac * opSec
	case cpuimpl.ThreadCreate:
		if p.Dims.PatternCount < cpuimpl.DefaultMinPatterns || w == 1 {
			total = nOps * opSec
			break
		}
		per := math.Max(opSec/float64(w), bwSec) + float64(w)*m.ThreadCreateNs*1e-9
		total = nOps * per
	case cpuimpl.ThreadPool:
		if p.Dims.PatternCount < cpuimpl.DefaultMinPatterns || w == 1 {
			total = nOps * opSec
			break
		}
		per := math.Max(opSec/float64(w), bwSec) + float64(w)*m.PoolDispatchNs*1e-9
		total = nOps * per
	case cpuimpl.ThreadPoolHybrid:
		// Operation- and pattern-level parallelism compose on the shared
		// pool: each dependency level runs width×chunks tasks, so a level is
		// bounded by its compute spread over the busy workers, by the DRAM
		// floor of its concurrent operations, and by per-task dispatch.
		// Unlike the plain pool there is no whole-problem pattern threshold:
		// only a lone small operation stays serial.
		if w == 1 {
			total = nOps * opSec
			break
		}
		pat := p.Dims.PatternCount
		for _, width := range p.LevelWidths() {
			if width == 1 && pat < cpuimpl.DefaultMinPatterns {
				total += opSec
				continue
			}
			chunks := cpuimpl.HybridChunks(width, pat, w)
			tasks := float64(width * chunks)
			busy := math.Min(float64(w), tasks)
			total += math.Max(float64(width)*opSec/busy, float64(width)*bwSec) +
				tasks*m.PoolDispatchNs*1e-9
		}
	}
	return time.Duration(total * float64(time.Second))
}

// ThroughputGF returns the modeled throughput of the strategy in effective
// GFLOPS.
func (m CPUModel) ThroughputGF(mode cpuimpl.Mode, w int, p *Problem, single bool) float64 {
	t := m.EvalTime(mode, w, p, single)
	return flops.GFLOPS(p.FlopsPerEval(), t)
}

// PhiCPUModel returns a CPU threading model for the Xeon Phi 7210: many
// slow cores with high aggregate bandwidth, plus the heavier per-core
// overheads that give the Phi its weak small-problem behaviour in Fig. 4.
func PhiCPUModel() CPUModel {
	m := DefaultCPUModel()
	m.Desc = device.XeonPhi7210
	m.KernelEfficiency = 0.15 // unoptimized for this platform (§VIII-A1)
	m.BandwidthEff = 0.25
	m.PoolDispatchNs = 300
	m.ThreadCreateNs = 2500
	return m
}
