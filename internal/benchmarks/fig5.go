package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
	"gobeagle/internal/cpuimpl"
)

// Fig5Point is one point of Fig. 5: throughput at a given CPU thread count.
type Fig5Point struct {
	Threads       int
	ThreadedModel float64 // C++ threads GFLOPS
	OpenCLX86     float64 // OpenCL-x86 via device fission GFLOPS
}

// Fig5 reproduces Fig. 5: multicore scaling of the threaded model and the
// OpenCL-x86 implementation for the nucleotide likelihood with 10⁴ patterns
// on the dual Xeon E5-2680v4 (1..56 threads; the paper uses taskset for the
// threaded model and OpenCL device fission for OpenCL-x86). Throughput is
// expected to saturate around 27 threads from memory bandwidth.
func Fig5() ([]Fig5Point, error) {
	p, err := NewProblem(5, 16, 4, 10000, 4)
	if err != nil {
		return nil, err
	}
	// Real execution pass for both implementations at a restricted thread
	// count, verifying the fission path works end to end.
	if _, err := HostEval(p, gobeagle.FlagPrecisionSingle|gobeagle.FlagThreadingThreadPool, 1); err != nil {
		return nil, err
	}
	rsc, err := gobeagle.FindResource("Xeon E5-2680v4 x2", "OpenCL")
	if err != nil {
		return nil, err
	}
	cfgFission := p.InstanceConfig(rsc.ID, gobeagle.FlagPrecisionSingle)
	cfgFission.Threads = 2
	inst, err := gobeagle.NewInstance(cfgFission)
	if err != nil {
		return nil, err
	}
	if err := p.Load(inst); err != nil {
		inst.Finalize()
		return nil, err
	}
	if err := p.Verify(inst); err != nil {
		inst.Finalize()
		return nil, err
	}
	inst.Finalize()

	model := DefaultCPUModel()
	var points []Fig5Point
	for _, threads := range []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 34, 40, 48, 56} {
		pt := Fig5Point{
			Threads:       threads,
			ThreadedModel: model.ThroughputGF(cpuimpl.ThreadPool, threads, p, true),
		}
		gf, err := fissionedX86Throughput(p, rsc, threads)
		if err != nil {
			return nil, err
		}
		pt.OpenCLX86 = gf
		points = append(points, pt)
	}
	return points, nil
}

// fissionedX86Throughput charges one evaluation on a fissioned sub-device to
// the modeled clock.
func fissionedX86Throughput(p *Problem, rsc *gobeagle.Resource, threads int) (float64, error) {
	sub, err := rsc.Device().Fission(threads)
	if err != nil {
		return 0, err
	}
	return accelModeledThroughput(p, sub, gobeagle.FlagPrecisionSingle)
}

// PrintFig5 renders the scaling curve.
func PrintFig5(w io.Writer, points []Fig5Point) {
	fmt.Fprintln(w, "Fig. 5: multicore scaling, nucleotide model, 10,000 patterns (GFLOPS)")
	fmt.Fprintln(w, "threads   C++ threads   OpenCL-x86")
	for _, pt := range points {
		fmt.Fprintf(w, "%7d  %12.2f  %11.2f\n", pt.Threads, pt.ThreadedModel, pt.OpenCLX86)
	}
}
