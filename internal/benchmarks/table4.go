package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
)

// Table4Row is one row of Table IV: the fused-multiply-add optimization of
// the OpenCL-GPU kernels on the AMD Radeon R9 Nano.
type Table4Row struct {
	Precision   string
	Patterns    int
	WithoutFMA  float64 // GFLOPS
	WithFMA     float64
	PercentGain float64
}

// Table4 reproduces Table IV: partial-likelihoods kernel throughput with and
// without the FP_FAST_FMA kernel build, single and double precision, at 10⁴
// and 10⁵ patterns on the R9 Nano (4 rate categories, nucleotide model).
func Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, prec := range []struct {
		name string
		flag gobeagle.Flags
	}{{"single", gobeagle.FlagPrecisionSingle}, {"double", 0}} {
		for _, patterns := range []int{10000, 100000} {
			p, err := NewProblem(77, 16, 4, patterns, 4)
			if err != nil {
				return nil, err
			}
			without, err := DeviceEval(p, "Radeon R9 Nano", "OpenCL",
				prec.flag|gobeagle.FlagDisableFMA, 0, 3)
			if err != nil {
				return nil, err
			}
			with, err := DeviceEval(p, "Radeon R9 Nano", "OpenCL", prec.flag, 0, 3)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Precision:   prec.name,
				Patterns:    patterns,
				WithoutFMA:  without,
				WithFMA:     with,
				PercentGain: (with/without - 1) * 100,
			})
		}
	}
	// Present in the paper's order: single/double at 10⁴, then at 10⁵.
	ordered := []Table4Row{rows[0], rows[2], rows[1], rows[3]}
	return ordered, nil
}

// PrintTable4 renders the rows in the paper's layout.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table IV: OpenCL-GPU FMA optimization (AMD Radeon R9 Nano)")
	fmt.Fprintln(w, "precision  patterns   without-FMA   with-FMA   % gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s  %8d  %12.2f  %9.2f  %6.2f\n",
			r.Precision, r.Patterns, r.WithoutFMA, r.WithFMA, r.PercentGain)
	}
}
