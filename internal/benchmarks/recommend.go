package benchmarks

import (
	"gobeagle"
	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/flops"
)

// Recommendation names the implementation/resource pair expected to be
// fastest for a problem shape, with its modeled throughput.
type Recommendation struct {
	Resource  string // resource name, or "CPU (host)" for the threaded model
	Framework string // "", "CUDA" or "OpenCL"
	Setup     string // human-readable implementation description
	GFLOPS    float64
}

// Recommend scores every implementation/resource pair with the same
// performance models that regenerate the paper's tables and returns them
// best-first — the automatic selection the paper's conclusion identifies as
// the open problem ("selecting the best performing implementation depends
// not only on the hardware available but on problem size and type"). Small
// problems favor CPUs (kernel-launch overhead dominates accelerators);
// large pattern counts favor GPUs; codon models favor accelerators earlier
// than nucleotide models do.
func Recommend(tips, stateCount, patterns, categories int, single bool) ([]Recommendation, error) {
	p, err := NewProblem(1, tips, stateCount, patterns, categories)
	if err != nil {
		return nil, err
	}
	flags := gobeagle.Flags(0)
	if single {
		flags |= gobeagle.FlagPrecisionSingle
	}

	var out []Recommendation
	// The CPU threaded model on the reference host.
	xeon := DefaultCPUModel()
	out = append(out, Recommendation{
		Resource: "CPU (host)",
		Setup:    "C++ threads (thread-pool)",
		GFLOPS:   xeon.ThroughputGF(cpuimpl.ThreadPool, xeon.Desc.Cores, p, single),
	})
	out = append(out, Recommendation{
		Resource: "CPU (host)",
		Setup:    "C++ threads (hybrid op x pattern)",
		GFLOPS:   xeon.ThroughputGF(cpuimpl.ThreadPoolHybrid, xeon.Desc.Cores, p, single),
	})
	// Every accelerator device, modeled through a dry-run evaluation.
	for _, spec := range fig4Devices {
		rsc, err := gobeagle.FindResource(spec.resource, spec.framework)
		if err != nil {
			return nil, err
		}
		t, err := accelModeledEvalTime(p, rsc.Device(), flags, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Recommendation{
			Resource:  spec.resource,
			Framework: spec.framework,
			Setup:     spec.name,
			GFLOPS:    flops.GFLOPS(p.FlopsPerEval(), t),
		})
	}
	// Sort best-first (insertion sort; the list is tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].GFLOPS > out[j-1].GFLOPS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
