package benchmarks

import (
	"fmt"
	"io"
	"time"

	"gobeagle"
	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
)

// Fig6Row is one bar of Fig. 6: the total-runtime speedup of MrBayes with a
// given likelihood engine relative to the MrBayes-MPI double-precision
// baseline.
type Fig6Row struct {
	Model     string // "nucleotide" or "codon"
	Precision string // "single" or "double"
	Engine    string
	Speedup   float64
}

// Fig. 6 application model: likelihood work is the f-fraction of total
// baseline runtime (the paper reports >94% for DNA models and an "even
// greater proportion" for codon models, §III-A); the remaining (1−f) —
// moves, priors, swaps, I/O — is engine-independent. The four MC3 chains
// keep whichever engine busy in aggregate each generation, so per-generation
// likelihood time scales with the engine's full-machine (or full-device)
// throughput.
const (
	fig6LikelihoodFracNuc   = 0.90
	fig6LikelihoodFracCodon = 0.98
	fig6Chains              = 4
)

// fig6Dataset mirrors the paper's two MrBayes benchmarks: the
// Lepidoptera RNA-Seq nucleotide set and the arthropod codon subset.
type fig6Dataset struct {
	model    string
	tips     int
	patterns int
	states   int
	cats     int
	likFrac  float64
}

var fig6Datasets = []fig6Dataset{
	{"nucleotide", 16, 306780, 4, 4, fig6LikelihoodFracNuc},
	{"codon", 15, 6080, 61, 1, fig6LikelihoodFracCodon},
}

// Fig6 reproduces Fig. 6: MrBayes 3.2.6 speedups for the built-in SSE
// option and the C++ threads, OpenCL-x86 and OpenCL-GPU (FirePro S9170)
// library implementations, in single and double precision, for both
// datasets, all relative to MrBayes-MPI in double precision. The MC3
// sampler itself is implemented in internal/mcmc and validated end to end
// against these engines; the speedups reported here come from the same
// hardware models as Tables III–V and Fig. 4.
func Fig6() ([]Fig6Row, error) {
	xeon := DefaultCPUModel()
	phi := PhiCPUModel()
	gpu, err := device.FindDevice(device.OpenCL, "FirePro S9170")
	if err != nil {
		return nil, err
	}
	cpuDev, err := device.FindDevice(device.OpenCL, "Xeon E5-2680v4 x2")
	if err != nil {
		return nil, err
	}

	var rows []Fig6Row
	for _, ds := range fig6Datasets {
		p, err := NewProblem(2026, ds.tips, ds.states, ds.patterns, ds.cats)
		if err != nil {
			return nil, err
		}
		// Verify each engine class on a real, smaller instance of the same
		// configuration before trusting the model at full size.
		vp, err := NewProblem(2027, ds.tips, ds.states, 200, ds.cats)
		if err != nil {
			return nil, err
		}
		if _, err := HostEval(vp, gobeagle.FlagThreadingThreadPool, 1); err != nil {
			return nil, err
		}
		if _, err := DeviceEval(vp, "FirePro S9170", "OpenCL", 0, 0, 1); err != nil {
			return nil, err
		}
		if _, err := DeviceEval(vp, "Xeon E5-2680v4 x2", "OpenCL", 0, 0, 1); err != nil {
			return nil, err
		}

		// Baseline: MrBayes-MPI, scalar double, one core per chain.
		lBase := xeon.EvalTime(cpuimpl.Serial, 1, p, false)
		overhead := time.Duration(float64(lBase) * (1/ds.likFrac - 1))
		tBase := overhead + lBase

		for _, prec := range []struct {
			name   string
			single bool
			flag   gobeagle.Flags
		}{{"double", false, 0}, {"single", true, gobeagle.FlagPrecisionSingle}} {
			// Built-in SSE (MrBayes native vectorization; effective for
			// nucleotide data, scalar otherwise).
			lSSE := xeon.EvalTime(cpuimpl.SSE, 1, p, prec.single)
			rows = append(rows, Fig6Row{ds.model, prec.name, "MrBayes SSE",
				float64(tBase) / float64(overhead+lSSE)})

			// C++ threads: thread-pool across the whole machine.
			lPool := xeon.EvalTime(cpuimpl.ThreadPool, xeon.Desc.Cores, p, prec.single)
			rows = append(rows, Fig6Row{ds.model, prec.name, "C++ threads (Xeon E5 x2)",
				float64(tBase) / float64(overhead+lPool)})

			// C++ threads on the Xeon Phi 7210.
			lPhi := phi.EvalTime(cpuimpl.ThreadPool, phi.Desc.Cores, p, prec.single)
			rows = append(rows, Fig6Row{ds.model, prec.name, "C++ threads (Xeon Phi 7210)",
				float64(tBase) / float64(overhead+lPhi)})

			// OpenCL-x86 across the whole machine.
			lX86, err := accelModeledEvalTime(p, cpuDev, prec.flag, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{ds.model, prec.name, "OpenCL-x86 (Xeon E5 x2)",
				float64(tBase) / float64(overhead+lX86)})

			// OpenCL-GPU on the FirePro S9170.
			lGPU, err := accelModeledEvalTime(p, gpu, prec.flag, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{ds.model, prec.name, "OpenCL-GPU (FirePro S9170)",
				float64(tBase) / float64(overhead+lGPU)})
		}
	}
	return rows, nil
}

// Headline returns the paper's §I headline number from the rows: the
// codon-model single-precision OpenCL-x86 speedup on the dual Xeon.
func Headline(rows []Fig6Row) float64 {
	for _, r := range rows {
		if r.Model == "codon" && r.Precision == "single" && r.Engine == "OpenCL-x86 (Xeon E5 x2)" {
			return r.Speedup
		}
	}
	return 0
}

// PrintFig6 renders the rows grouped as in the figure.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Fig. 6: MrBayes 3.2.6 total-runtime speedups vs MrBayes-MPI double precision")
	for _, model := range []string{"nucleotide", "codon"} {
		for _, prec := range []string{"double", "single"} {
			fmt.Fprintf(w, "  %s model, %s precision:\n", model, prec)
			for _, r := range rows {
				if r.Model == model && r.Precision == prec {
					fmt.Fprintf(w, "    %-28s %6.1fx\n", r.Engine, r.Speedup)
				}
			}
		}
	}
	fmt.Fprintf(w, "  headline (codon, single, OpenCL-x86 on 2x Xeon E5-2680v4): %.0fx (paper: 39x)\n",
		Headline(rows))
}
