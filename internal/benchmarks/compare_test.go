package benchmarks

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateReport() Report {
	return Report{
		Experiment: "fig4smoke",
		Unit:       "GFLOPS",
		Records: []Record{
			{Device: "Radeon R9 Nano", Implementation: "R9 Nano", Strategy: "device",
				Model: "nucleotide", Precision: "single", States: 4, Patterns: 1000,
				Categories: 4, Tips: 16, GFLOPS: 400},
			{Device: "Xeon", Implementation: "OpenCL-x86", Strategy: "device",
				Model: "nucleotide", Precision: "single", States: 4, Patterns: 1000,
				Categories: 4, Tips: 16, GFLOPS: 98},
			{Device: "synthetic", Implementation: "adaptive", Strategy: "multi-device",
				Model: "nucleotide", Precision: "double", States: 4, Patterns: 1024,
				Categories: 4, Tips: 16, Speedup: 2.5},
		},
	}
}

// TestCompareDetectsInjectedSlowdown is the gate's acceptance test: a 20%
// slowdown on one record must trip the default 10% tolerance, while 5% noise
// must not.
func TestCompareDetectsInjectedSlowdown(t *testing.T) {
	base := gateReport()

	slowed := gateReport()
	slowed.Records[0].GFLOPS *= 0.8 // injected 20% regression
	cmp, err := Compare(base, slowed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() || cmp.Regressions() != 1 {
		t.Fatalf("20%% slowdown not gated: %+v", cmp)
	}
	var reg Delta
	for _, d := range cmp.Deltas {
		if d.Regression {
			reg = d
		}
	}
	if !strings.Contains(reg.Key, "R9 Nano") {
		t.Errorf("wrong record flagged: %q", reg.Key)
	}

	noisy := gateReport()
	for i := range noisy.Records {
		noisy.Records[i].GFLOPS *= 0.95 // 5% noise, within tolerance
		noisy.Records[i].Speedup *= 0.95
	}
	cmp, err = Compare(base, noisy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("5%% noise tripped the gate: %+v", cmp)
	}
}

// TestCompareSpeedupMetric checks speedup-unit records (rebalance, fig6) are
// gated on their speedup factor.
func TestCompareSpeedupMetric(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Records[2].Speedup = 1.0 // adaptive speedup collapsed
	cmp, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions() != 1 {
		t.Fatalf("speedup regression not detected: %+v", cmp)
	}
	for _, d := range cmp.Deltas {
		if d.Regression && d.Unit != "speedup" {
			t.Errorf("regression gated on unit %q, want speedup", d.Unit)
		}
	}
}

func TestCompareMissingRecordFailsGate(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Records = cur.Records[:2] // coverage silently dropped
	cmp, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() || len(cmp.Missing) != 1 {
		t.Fatalf("missing record did not fail the gate: %+v", cmp)
	}

	// The reverse — new records with no baseline — is informational only.
	cmp, err = Compare(Report{Experiment: "fig4smoke", Records: base.Records[:2]}, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() || len(cmp.Added) != 1 {
		t.Fatalf("added record handled wrong: %+v", cmp)
	}
}

func TestCompareExperimentMismatch(t *testing.T) {
	base := gateReport()
	other := gateReport()
	other.Experiment = "rebalance"
	if _, err := Compare(base, other, 0); err == nil {
		t.Fatal("cross-experiment comparison must error")
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := gateReport()
	path, err := WriteReport(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != rep.Experiment || len(got.Records) != len(rep.Records) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestPrintComparisonShowsRegressions(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Records[0].GFLOPS *= 0.5
	cmp, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintComparison(&buf, cmp)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("comparison output missing failure markers:\n%s", out)
	}
	cmpOK, err := Compare(base, gateReport(), 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintComparison(&buf, cmpOK)
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("clean comparison not marked PASS:\n%s", buf.String())
	}
}
