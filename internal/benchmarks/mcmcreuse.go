package benchmarks

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"gobeagle"
	"gobeagle/internal/tree"
)

// The mcmcreuse experiment measures the accepted-move cost of an MCMC
// proposal stream — the workload incremental re-evaluation exists for. A
// sampler perturbs one branch length per accepted move; re-evaluating the
// likelihood then only needs the proposed branch's transition matrix and the
// partials on the path from that branch to the root, yet a client without
// dirty-node bookkeeping resubmits the whole tree. The experiment drives the
// same deterministic proposal stream through three instances:
//
//   - reuse-off: full-schedule resubmission, everything recomputed — the
//     naive client, and the baseline;
//   - reuse-on: full-schedule resubmission with FlagReuse — the library's
//     dirty tracking skips every clean matrix and operation;
//   - oracle: a client that maintains its own dirty-node bookkeeping and
//     submits tree.DirtySchedule — the lower bound on work.
//
// All three phases must produce bit-identical log-likelihood traces; the
// reported speedups are total proposal-loop wall time relative to reuse-off.

// McmcReuseRow is one phase of the experiment.
type McmcReuseRow struct {
	Phase    string        // "reuse-off", "reuse-on", "oracle"
	Wall     time.Duration // total wall time of the proposal loop
	PerMove  time.Duration // wall time per accepted move
	Speedup  float64       // vs reuse-off
	OpRate   float64       // fraction of submitted partials ops skipped (reuse-on only)
	MatRate  float64       // fraction of submitted matrix updates skipped (reuse-on only)
	LnLFirst float64       // first and last trace entries, for the report
	LnLLast  float64
}

// mcmcProposal is one accepted branch-length move.
type mcmcProposal struct {
	node   int // index into tree.Nodes()
	length float64
}

// McmcReuse runs the accepted-move-cost experiment: tips taxa, patterns
// site patterns, moves accepted proposals.
func McmcReuse(tips, patterns, moves int) ([]McmcReuseRow, error) {
	p, err := NewProblem(2024, tips, 4, patterns, 4)
	if err != nil {
		return nil, err
	}
	nodes := p.Tree.Nodes()
	initial := make([]float64, len(nodes))
	for i, n := range nodes {
		initial[i] = n.Length
	}
	rng := rand.New(rand.NewSource(77))
	proposals := make([]mcmcProposal, moves)
	for i := range proposals {
		for {
			j := rng.Intn(len(nodes))
			if nodes[j] == p.Tree.Root {
				continue
			}
			proposals[i] = mcmcProposal{node: j, length: 0.02 + rng.Float64()*0.4}
			break
		}
	}
	reset := func() {
		for i, n := range nodes {
			n.Length = initial[i]
		}
	}

	// fullEval submits the complete schedule, as a client without dirty
	// bookkeeping does every proposal.
	fullEval := func(inst *gobeagle.Instance) (float64, error) {
		mats, lens, ops, root := p.Schedule()
		if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
			return 0, err
		}
		if err := inst.UpdatePartials(ops); err != nil {
			return 0, err
		}
		return inst.CalculateRootLogLikelihoods(root, gobeagle.None)
	}
	// dirtyEval submits the minimal schedule for one dirty node — the
	// hand-maintained oracle.
	dirtyEval := func(inst *gobeagle.Instance, dirty *tree.Node) (float64, error) {
		sched := p.Tree.DirtySchedule([]*tree.Node{dirty})
		mats := make([]int, len(sched.Matrices))
		lens := make([]float64, len(sched.Matrices))
		for i, mu := range sched.Matrices {
			mats[i], lens[i] = mu.Matrix, mu.Length
		}
		if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
			return 0, err
		}
		ops := make([]gobeagle.Operation, len(sched.Ops))
		for i, op := range sched.Ops {
			ops[i] = gobeagle.Operation{
				Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
				Child1: op.Child1, Child1Matrix: op.Child1Mat,
				Child2: op.Child2, Child2Matrix: op.Child2Mat,
			}
		}
		if err := inst.UpdatePartials(ops); err != nil {
			return 0, err
		}
		return inst.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
	}

	type phase struct {
		name   string
		flags  gobeagle.Flags
		oracle bool
	}
	phases := []phase{
		{"reuse-off", 0, false},
		{"reuse-on", gobeagle.FlagReuse, false},
		{"oracle", 0, true},
	}
	var rows []McmcReuseRow
	var baseTrace []float64
	for _, ph := range phases {
		reset()
		inst, err := gobeagle.NewInstance(p.InstanceConfig(0, ph.flags))
		if err != nil {
			return nil, err
		}
		if err := p.Load(inst); err != nil {
			inst.Finalize()
			return nil, err
		}
		// Warm start: every phase begins from a fully evaluated tree, as a
		// chain does after its first generation.
		if _, err := fullEval(inst); err != nil {
			inst.Finalize()
			return nil, err
		}
		trace := make([]float64, moves)
		t0 := time.Now()
		for i, prop := range proposals {
			nodes[prop.node].Length = prop.length
			var lnL float64
			var err error
			if ph.oracle {
				lnL, err = dirtyEval(inst, nodes[prop.node])
			} else {
				lnL, err = fullEval(inst)
			}
			if err != nil {
				inst.Finalize()
				return nil, err
			}
			trace[i] = lnL
		}
		wall := time.Since(t0)
		rs := inst.ReuseStats()
		if err := inst.Finalize(); err != nil {
			return nil, err
		}
		if baseTrace == nil {
			baseTrace = trace
		} else {
			for i := range trace {
				if trace[i] != baseTrace[i] {
					return nil, fmt.Errorf("benchmarks: %s lnL trace diverged at move %d: %v != %v",
						ph.name, i, trace[i], baseTrace[i])
				}
			}
		}
		rows = append(rows, McmcReuseRow{
			Phase:    ph.name,
			Wall:     wall,
			PerMove:  wall / time.Duration(moves),
			Speedup:  1,
			OpRate:   rs.OpHitRate(),
			MatRate:  rs.MatrixHitRate(),
			LnLFirst: trace[0],
			LnLLast:  trace[len(trace)-1],
		})
	}
	base := rows[0].Wall
	for i := range rows {
		rows[i].Speedup = float64(base) / float64(rows[i].Wall)
	}
	return rows, nil
}

// PrintMcmcReuse renders the experiment as a table.
func PrintMcmcReuse(w io.Writer, rows []McmcReuseRow) {
	fmt.Fprintln(w, "Incremental re-evaluation: accepted-move cost of an MCMC proposal stream")
	fmt.Fprintln(w, "one branch-length move per step, full-schedule resubmission vs FlagReuse vs dirty-schedule oracle")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\twall\tper move\tspeedup vs reuse-off\tops skipped\tmatrices skipped")
	for _, r := range rows {
		skip := "-"
		mskip := "-"
		if r.OpRate > 0 || r.MatRate > 0 {
			skip = fmt.Sprintf("%.1f%%", 100*r.OpRate)
			mskip = fmt.Sprintf("%.1f%%", 100*r.MatRate)
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.2f\t%s\t%s\n",
			r.Phase, r.Wall.Round(time.Millisecond), r.PerMove.Round(10*time.Microsecond),
			r.Speedup, skip, mskip)
	}
	tw.Flush()
	fmt.Fprintln(w, "log-likelihood traces of all phases are bit-identical (verified)")
}

// McmcReuseReport converts the experiment to the machine-readable form.
func McmcReuseReport(rows []McmcReuseRow, tips, patterns int) Report {
	rep := Report{
		Experiment:  "mcmcreuse",
		Description: "accepted-move cost of an MCMC proposal stream: full resubmission vs incremental re-evaluation vs dirty-schedule oracle",
		Unit:        "speedup",
	}
	for _, r := range rows {
		rep.Records = append(rep.Records, Record{
			Device:         "host CPU (serial)",
			Implementation: r.Phase,
			Strategy:       "serial",
			Model:          "nucleotide", Precision: "double",
			States: 4, Patterns: patterns, Categories: 4, Tips: tips,
			Speedup: r.Speedup,
		})
	}
	return rep
}
