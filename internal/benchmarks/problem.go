// Package benchmarks regenerates every table and figure of the paper's
// evaluation (§VI–§VIII). Each experiment builds the same workloads the
// paper describes (genomictest-style random synthetic data), really executes
// the library implementations end-to-end, and reports throughput in
// effective GFLOPS.
//
// Timing sources. CPU-side experiments were measured by the paper on a dual
// Xeon E5-2680v4 (56 hardware threads) and GPU experiments on the Table II
// devices; neither is available here, and the build host may even be a
// single core. Every experiment therefore reports the *modeled* throughput
// of the paper's hardware — derived from the device descriptors through the
// roofline model of internal/device and the CPU threading model of this
// package — while the execution of every configuration is real, so the
// numbers describe code that demonstrably computes correct likelihoods. On
// multicore hosts, `go test -bench` additionally provides raw measured
// timings for the CPU implementations.
package benchmarks

import (
	"fmt"
	"math/rand"

	"gobeagle"
	"gobeagle/internal/engine"
	"gobeagle/internal/flops"
	"gobeagle/internal/kernels"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// Problem is one benchmark workload: a tree, model, rate mixture and
// synthetic pattern set, as produced by the genomictest program.
type Problem struct {
	Tree     *tree.Tree
	Model    *substmodel.Model
	Rates    *substmodel.SiteRates
	Patterns *seqgen.PatternSet
	Dims     kernels.Dims
}

// NewProblem generates a benchmark problem. stateCount 4 builds an HKY85
// nucleotide model, 61 a GY94 codon model, anything else a general
// reversible model with random parameters.
func NewProblem(seed int64, tips, stateCount, patterns, categories int) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tips, 0.1)
	if err != nil {
		return nil, err
	}
	var m *substmodel.Model
	switch stateCount {
	case 4:
		m, err = substmodel.NewHKY85(2.5, []float64{0.3, 0.2, 0.25, 0.25})
	case 61:
		m, err = substmodel.NewGY94(2, 0.5, nil)
	case 20:
		m, err = substmodel.NewPoissonAA(nil)
	default:
		rates := make([]float64, stateCount*(stateCount-1)/2)
		for i := range rates {
			rates[i] = 0.2 + rng.Float64()
		}
		freqs := make([]float64, stateCount)
		for i := range freqs {
			freqs[i] = 1 / float64(stateCount)
		}
		m, err = substmodel.NewGeneralReversible("random", rates, freqs)
	}
	if err != nil {
		return nil, err
	}
	var rates *substmodel.SiteRates
	if categories > 1 {
		rates, err = substmodel.GammaRates(0.5, categories)
		if err != nil {
			return nil, err
		}
	} else {
		rates = substmodel.SingleRate()
	}
	ps, err := seqgen.RandomPatterns(rng, tips, stateCount, patterns)
	if err != nil {
		return nil, err
	}
	return &Problem{
		Tree:     tr,
		Model:    m,
		Rates:    rates,
		Patterns: ps,
		Dims: kernels.Dims{
			StateCount:    stateCount,
			PatternCount:  patterns,
			CategoryCount: categories,
		},
	}, nil
}

// InstanceConfig returns a library configuration sized for the problem.
func (p *Problem) InstanceConfig(resourceID int, flags gobeagle.Flags) gobeagle.Config {
	return gobeagle.Config{
		TipCount:        p.Tree.TipCount,
		PartialsBuffers: p.Tree.NodeCount(),
		MatrixBuffers:   p.Tree.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    0,
		StateCount:      p.Dims.StateCount,
		PatternCount:    p.Dims.PatternCount,
		CategoryCount:   p.Dims.CategoryCount,
		ResourceID:      resourceID,
		Flags:           flags,
	}
}

// Load pushes the problem's data into an instance.
func (p *Problem) Load(inst *gobeagle.Instance) error {
	ed, err := p.Model.Eigen()
	if err != nil {
		return err
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(p.Rates.Rates),
		inst.SetCategoryWeights(p.Rates.Weights),
		inst.SetStateFrequencies(p.Model.Frequencies),
		inst.SetPatternWeights(p.Patterns.Weights),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	for i := 0; i < p.Tree.TipCount; i++ {
		if err := inst.SetTipStates(i, p.Patterns.TipStates(i)); err != nil {
			return err
		}
	}
	return nil
}

// Schedule returns the full-evaluation schedule in public API form.
func (p *Problem) Schedule() (mats []int, lens []float64, ops []gobeagle.Operation, root int) {
	sched := p.Tree.FullSchedule()
	mats = make([]int, len(sched.Matrices))
	lens = make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	ops = make([]gobeagle.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	return mats, lens, ops, sched.Root
}

// EngineOps returns the operation list in internal engine form, for driving
// implementations directly.
func (p *Problem) EngineOps() []engine.Operation {
	sched := p.Tree.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	return ops
}

// OpCount returns the partial-likelihood operations per full evaluation.
func (p *Problem) OpCount() int { return p.Tree.TipCount - 1 }

// FlopsPerEval returns the effective floating-point operations of one full
// evaluation of the partial-likelihoods function over the tree.
func (p *Problem) FlopsPerEval() float64 { return flops.Total(p.Dims, p.OpCount()) }

// Verify evaluates the problem on an instance and checks the result is a
// finite negative log likelihood, guarding every benchmark configuration
// against silently broken execution.
func (p *Problem) Verify(inst *gobeagle.Instance) error {
	mats, lens, ops, root := p.Schedule()
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return err
	}
	if err := inst.UpdatePartials(ops); err != nil {
		return err
	}
	lnL, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None)
	if err != nil {
		return err
	}
	if !(lnL < 0) {
		return fmt.Errorf("benchmarks: suspicious log likelihood %v", lnL)
	}
	return nil
}

// LevelWidths returns the number of independent operations at each
// dependency level of the problem's schedule, the concurrency available to
// the futures threading approach.
func (p *Problem) LevelWidths() []int {
	levels := tree.OpLevels(p.Tree.FullSchedule().Ops)
	w := make([]int, len(levels))
	for i, l := range levels {
		w[i] = len(l)
	}
	return w
}
