package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/flops"
)

// Fig4Series is one line of Fig. 4: throughput of the core likelihood
// kernel for one implementation/device pair across unique-site-pattern
// counts.
type Fig4Series struct {
	Name     string
	Patterns []int
	GFLOPS   []float64
}

// Fig4Panel is one panel (nucleotide or codon) of Fig. 4.
type Fig4Panel struct {
	Model  string
	Series []Fig4Series
}

// fig4DeviceSpec describes a device-backed series.
type fig4DeviceSpec struct {
	name      string
	resource  string
	framework string
	flags     gobeagle.Flags
}

var fig4Devices = []fig4DeviceSpec{
	{"CUDA: NVIDIA Quadro P5000", "Quadro P5000", "CUDA", gobeagle.FlagPrecisionSingle},
	{"OpenCL-GPU: NVIDIA Quadro P5000", "Quadro P5000", "OpenCL", gobeagle.FlagPrecisionSingle},
	{"OpenCL-GPU: AMD FirePro S9170", "FirePro S9170", "OpenCL", gobeagle.FlagPrecisionSingle},
	{"OpenCL-GPU: AMD Radeon R9 Nano", "Radeon R9 Nano", "OpenCL", gobeagle.FlagPrecisionSingle},
	{"OpenCL-x86: Intel Xeon E5-2680v4 x2", "Xeon E5-2680v4 x2", "OpenCL", gobeagle.FlagPrecisionSingle},
}

// fig4Tips is the tree size used for the kernel sweep.
const fig4Tips = 16

// verifyLimit bounds the pattern count at which configurations execute for
// real; beyond it the identical configuration runs on the modeled clock
// only (dry run), having been verified at the largest real size.
func fig4VerifyLimit(stateCount int) int {
	if stateCount >= 61 {
		return 1000
	}
	return 20000
}

// deviceSweep produces one device-backed series across pattern counts.
func deviceSweep(spec fig4DeviceSpec, stateCount, cats int, patterns []int) (Fig4Series, error) {
	s := Fig4Series{Name: spec.name, Patterns: patterns}
	limit := fig4VerifyLimit(stateCount)
	for _, pat := range patterns {
		p, err := NewProblem(int64(pat), fig4Tips, stateCount, pat, cats)
		if err != nil {
			return s, err
		}
		var gf float64
		if pat <= limit {
			gf, err = DeviceEval(p, spec.resource, spec.framework, spec.flags, 0, 1)
		} else {
			gf, err = deviceEvalDry(p, spec)
		}
		if err != nil {
			return s, err
		}
		s.GFLOPS = append(s.GFLOPS, gf)
	}
	return s, nil
}

// deviceEvalDry charges one full evaluation to the modeled clock without
// executing kernel bodies.
func deviceEvalDry(p *Problem, spec fig4DeviceSpec) (float64, error) {
	rsc, err := gobeagle.FindResource(spec.resource, spec.framework)
	if err != nil {
		return 0, err
	}
	inst, err := gobeagle.NewInstance(p.InstanceConfig(rsc.ID, spec.flags))
	if err != nil {
		return 0, err
	}
	defer inst.Finalize()
	q := inst.DeviceQueue()
	q.SetDryRun(true)
	// Matrices must be marked computed for the op validation; a dry-run
	// update does that without executing.
	mats, lens, ops, _ := p.Schedule()
	ed, err := p.Model.Eigen()
	if err != nil {
		return 0, err
	}
	if err := inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data); err != nil {
		return 0, err
	}
	if err := inst.SetCategoryRates(p.Rates.Rates); err != nil {
		return 0, err
	}
	for i := 0; i < p.Tree.TipCount; i++ {
		if err := inst.SetTipStates(i, p.Patterns.TipStates(i)); err != nil {
			return 0, err
		}
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return 0, err
	}
	q.ResetTimers()
	if err := inst.UpdatePartials(ops); err != nil {
		return 0, err
	}
	return flops.GFLOPS(p.FlopsPerEval(), q.ModeledTime()), nil
}

// cpuModelSweep produces an analytically modeled CPU series.
func cpuModelSweep(name string, m CPUModel, mode cpuimpl.Mode, threads, stateCount, cats int, patterns []int) (Fig4Series, error) {
	s := Fig4Series{Name: name, Patterns: patterns}
	for _, pat := range patterns {
		p, err := NewProblem(int64(pat), fig4Tips, stateCount, pat, cats)
		if err != nil {
			return s, err
		}
		s.GFLOPS = append(s.GFLOPS, m.ThroughputGF(mode, threads, p, true))
	}
	return s, nil
}

// Fig4 reproduces both panels of Fig. 4 (single precision, 4 rate
// categories, 16-tip trees): nucleotide models swept to 10⁶ patterns and
// codon models to 5·10⁴.
func Fig4() ([]Fig4Panel, error) {
	return Fig4With(
		[]int{100, 316, 1000, 3162, 10000, 31623, 100000, 316228, 1000000},
		[]int{100, 316, 1000, 3162, 10000, 31623, 50000})
}

// Fig4With runs the Fig. 4 sweep over caller-chosen pattern counts (tests
// use reduced sweeps).
func Fig4With(nucPatterns, codonPatterns []int) ([]Fig4Panel, error) {
	var panels []Fig4Panel
	for _, panel := range []struct {
		model    string
		states   int
		patterns []int
	}{
		{"nucleotide", 4, nucPatterns},
		{"codon", 61, codonPatterns},
	} {
		out := Fig4Panel{Model: panel.model}
		for _, spec := range fig4Devices {
			s, err := deviceSweep(spec, panel.states, 4, panel.patterns)
			if err != nil {
				return nil, err
			}
			out.Series = append(out.Series, s)
		}
		xeon := DefaultCPUModel()
		phi := PhiCPUModel()
		cpuSeries := []struct {
			name    string
			m       CPUModel
			mode    cpuimpl.Mode
			threads int
		}{
			{"C++ threads: Intel Xeon Phi 7210", phi, cpuimpl.ThreadPool, phi.Desc.Cores},
			{"C++ threads: Intel Xeon E5-2680v4 x2", xeon, cpuimpl.ThreadPool, xeon.Desc.Cores},
			{"C++ serial: Intel Xeon E5-2680", xeon, cpuimpl.Serial, 1},
		}
		for _, cs := range cpuSeries {
			s, err := cpuModelSweep(cs.name, cs.m, cs.mode, cs.threads, panel.states, 4, panel.patterns)
			if err != nil {
				return nil, err
			}
			out.Series = append(out.Series, s)
		}
		panels = append(panels, out)
	}
	return panels, nil
}

// PrintFig4 renders the panels as aligned series tables.
func PrintFig4(w io.Writer, panels []Fig4Panel) {
	for _, panel := range panels {
		fmt.Fprintf(w, "Fig. 4 (%s model): partial-likelihoods throughput in GFLOPS\n", panel.Model)
		fmt.Fprintf(w, "%-38s", "unique site patterns ->")
		for _, pat := range panel.Series[0].Patterns {
			fmt.Fprintf(w, "%9d", pat)
		}
		fmt.Fprintln(w)
		for _, s := range panel.Series {
			fmt.Fprintf(w, "%-38s", s.Name)
			for _, gf := range s.GFLOPS {
				fmt.Fprintf(w, "%9.1f", gf)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}
