package benchmarks

import (
	"context"
	"fmt"
	"io"
	"net"
	"text/tabwriter"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/multiimpl"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/trace"
)

// The distshard experiment measures distributed pattern sharding over the
// remoteimpl wire protocol against its local equivalents, and proves the
// exactness claim that makes it usable: the sharded root log likelihood is
// BIT-IDENTICAL to the single-engine one, both for the local multi-device
// split and for the split across worker processes (here in-process workers
// behind real loopback TCP sockets, so every byte crosses the kernel's
// network stack). Three phases share one problem: a single serial engine,
// a local two-backend multi-device split, and a two-worker remote shard
// driven by the same coordinator. Speedups are batch wall ratios vs single;
// the remote phase additionally pays serialization and two RPC round trips
// per batch, which is the overhead this experiment quantifies.

// DistShardRow is one phase of the distributed sharding experiment.
type DistShardRow struct {
	Phase     string        // "single", "local-2dev", "dist-2worker"
	Split     string        // pattern split, e.g. "2048:2048"
	BatchWall time.Duration // fastest measured UpdatePartials+root batch
	Speedup   float64       // vs single
	RPCBytes  int64         // wire bytes both directions (remote phase only)
}

// distShardWorker boots an in-process worker on loopback and returns its
// address and a shutdown function.
func distShardWorker() (string, func(), error) {
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			return cpuimpl.New(cfg, cpuimpl.Serial)
		},
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Serve(ctx, ln)
	}()
	stop := func() {
		cancel()
		<-done
	}
	return ln.Addr().String(), stop, nil
}

// DistShard runs the distributed sharding experiment.
func DistShard() ([]DistShardRow, error) {
	p, err := NewProblem(77, 24, 4, 4096, 4)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		TipCount:        p.Tree.TipCount,
		PartialsBuffers: p.Tree.NodeCount(),
		MatrixBuffers:   p.Tree.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    0,
		Dims:            p.Dims,
	}
	ops := p.EngineOps()
	root := p.Tree.FullSchedule().Root
	const measure = 5

	// One timed unit is what a sampler iteration costs: the full peel plus
	// the root reduction (which for the sharded engines includes the
	// cross-backend site gather).
	batch := func(e engine.Engine) (float64, time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		var lnL float64
		for i := 0; i < measure; i++ {
			t0 := time.Now()
			if err := e.UpdatePartials(ops); err != nil {
				return 0, 0, err
			}
			l, err := e.CalculateRootLogLikelihoods(root, engine.None)
			if err != nil {
				return 0, 0, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			lnL = l
		}
		return lnL, best, nil
	}

	// Phase 1: single serial engine — the bit-identity reference.
	single, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		return nil, err
	}
	defer single.Close()
	if err := p.loadEngine(single); err != nil {
		return nil, err
	}
	wantLnL, singleWall, err := batch(single)
	if err != nil {
		return nil, err
	}
	rows := []DistShardRow{{
		Phase: "single", Split: fmt.Sprintf("%d", p.Dims.PatternCount),
		BatchWall: singleWall, Speedup: 1,
	}}

	serialBuilder := func(sub engine.Config) (engine.Engine, error) {
		return cpuimpl.New(sub, cpuimpl.Serial)
	}

	// Phase 2: the local multi-device baseline, two serial backends.
	local, err := multiimpl.New(cfg, []multiimpl.Builder{serialBuilder, serialBuilder}, []float64{1, 1})
	if err != nil {
		return nil, err
	}
	defer local.Close()
	if err := p.loadEngine(local); err != nil {
		return nil, err
	}
	localLnL, localWall, err := batch(local)
	if err != nil {
		return nil, err
	}
	if localLnL != wantLnL {
		return nil, fmt.Errorf("local multi-device root %v != single %v (must be bit-identical)", localLnL, wantLnL)
	}
	rows = append(rows, DistShardRow{
		Phase: "local-2dev", Split: splitString(local),
		BatchWall: localWall, Speedup: float64(singleWall) / float64(localWall),
	})

	// Phase 3: the same split across two worker processes over loopback TCP.
	var clients []*remoteimpl.Engine
	builders := make([]multiimpl.Builder, 2)
	for i := range builders {
		addr, stop, err := distShardWorker()
		if err != nil {
			return nil, err
		}
		defer stop()
		builders[i] = func(sub engine.Config) (engine.Engine, error) {
			c, err := remoteimpl.New(sub, remoteimpl.Options{Addr: addr})
			if err == nil {
				clients = append(clients, c)
			}
			return c, err
		}
	}
	dist, err := multiimpl.NewBalanced(cfg, builders, []float64{1, 1},
		multiimpl.Options{Nodes: []int{1, 2}})
	if err != nil {
		return nil, err
	}
	defer dist.Close()
	if err := p.loadEngine(dist); err != nil {
		return nil, err
	}
	distLnL, distWall, err := batch(dist)
	if err != nil {
		return nil, err
	}
	if distLnL != wantLnL {
		return nil, fmt.Errorf("distributed root %v != single %v (must be bit-identical)", distLnL, wantLnL)
	}
	var rpcBytes int64
	for _, c := range clients {
		s := c.Stats()
		rpcBytes += s.BytesSent + s.BytesReceived
	}
	rows = append(rows, DistShardRow{
		Phase: "dist-2worker", Split: splitString(dist),
		BatchWall: distWall, Speedup: float64(singleWall) / float64(distWall),
		RPCBytes: rpcBytes,
	})
	return rows, nil
}

// PrintDistShard renders the experiment as a table.
func PrintDistShard(w io.Writer, rows []DistShardRow) {
	fmt.Fprintln(w, "Distributed pattern sharding over loopback TCP vs local splits (§IX)")
	fmt.Fprintln(w, "serial CPU backends, 4096 patterns, 24 tips, 4 categories; roots verified bit-identical")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tsplit\tbatch wall\tspeedup vs single")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%.2f\n", r.Phase, r.Split, r.BatchWall.Round(10*time.Microsecond), r.Speedup)
	}
	tw.Flush()
	for _, r := range rows {
		if r.Phase == "dist-2worker" {
			fmt.Fprintf(w, "remote phase moved %d KiB over the wire during measurement\n", r.RPCBytes/1024)
		}
	}
}

// DistShardReport converts the experiment to the machine-readable form.
func DistShardReport(rows []DistShardRow) Report {
	rep := Report{
		Experiment:  "distshard",
		Description: "distributed pattern sharding over loopback workers vs local multi-device and single-engine baselines",
		Unit:        "speedup",
	}
	for _, r := range rows {
		rep.Records = append(rep.Records, Record{
			Device:         "loopback 2-worker shard",
			Implementation: r.Phase,
			Strategy:       "distributed",
			Model:          "nucleotide", Precision: "double",
			States: 4, Patterns: 4096, Categories: 4, Tips: 24,
			Speedup: r.Speedup,
		})
	}
	return rep
}
