package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
)

// Table5Row is one row of Table V: the OpenCL-x86 work-group size sweep on
// the dual Xeon E5-2680v4, against the OpenCL-GPU kernel style as reference.
type Table5Row struct {
	Solution   string
	WorkGroup  int     // patterns per work-group
	Throughput float64 // GFLOPS
	Speedup    float64 // relative to the OpenCL-GPU-style kernels on the CPU
}

// Table5 reproduces Table V: the GPU-style kernels on the CPU device as the
// reference row, then the x86 kernels across work-group sizes (single
// precision, nucleotide model, 10⁴ patterns). Peak is expected at ≥256
// patterns per work-group, and the paper selects 256 as the smallest size
// with near-peak performance to minimize pattern padding.
func Table5() ([]Table5Row, error) {
	p, err := NewProblem(55, 16, 4, 10000, 4)
	if err != nil {
		return nil, err
	}
	const cpuName = "Xeon E5-2680v4 x2"
	ref, err := DeviceEval(p, cpuName, "OpenCL",
		gobeagle.FlagPrecisionSingle|gobeagle.FlagKernelGPU, 64, 3)
	if err != nil {
		return nil, err
	}
	rows := []Table5Row{{Solution: "OpenCL-GPU", WorkGroup: 64, Throughput: ref, Speedup: 1}}
	for _, wg := range []int{64, 128, 256, 512, 1024} {
		gf, err := DeviceEval(p, cpuName, "OpenCL", gobeagle.FlagPrecisionSingle, wg, 3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Solution:   "OpenCL-x86",
			WorkGroup:  wg,
			Throughput: gf,
			Speedup:    gf / ref,
		})
	}
	return rows, nil
}

// PrintTable5 renders the rows in the paper's layout.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table V: OpenCL-x86 work-group size (dual Xeon E5-2680v4, 10,000 patterns)")
	fmt.Fprintln(w, "solution     work-group(patterns)  throughput(GFLOPS)  speedup(x OpenCL-GPU)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s  %20d  %18.2f  %10.2f\n",
			r.Solution, r.WorkGroup, r.Throughput, r.Speedup)
	}
}
