package benchmarks

import (
	"strings"
	"testing"
)

func TestRecommendSmallProblemFavorsCPU(t *testing.T) {
	recs, err := Recommend(16, 4, 200, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 5 {
		t.Fatalf("recommendation count %d", len(recs))
	}
	best := recs[0]
	if !strings.Contains(best.Resource, "CPU") && !strings.Contains(best.Resource, "Xeon") {
		t.Errorf("small problem should favor a CPU, got %s (%.1f GFLOPS)", best.Setup, best.GFLOPS)
	}
	// Sorted best-first.
	for i := 1; i < len(recs); i++ {
		if recs[i].GFLOPS > recs[i-1].GFLOPS {
			t.Fatal("recommendations not sorted")
		}
	}
}

func TestRecommendLargeNucleotideFavorsGPU(t *testing.T) {
	recs, err := Recommend(16, 4, 500000, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	best := recs[0]
	if !strings.Contains(best.Setup, "GPU") && !strings.Contains(best.Setup, "CUDA") {
		t.Errorf("large nucleotide problem should favor a GPU, got %s (%.1f GFLOPS)", best.Setup, best.GFLOPS)
	}
}

func TestRecommendCodonFavorsAcceleratorsEarlier(t *testing.T) {
	// At a medium pattern count, codon models should already prefer an
	// accelerator while the decision point shifts with model type.
	recs, err := Recommend(16, 61, 5000, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	best := recs[0]
	if strings.Contains(best.Setup, "thread-pool") {
		t.Errorf("codon at 5k patterns should prefer an accelerator, got %s", best.Setup)
	}
}

func TestRecommendPropagatesErrors(t *testing.T) {
	if _, err := Recommend(1, 4, 100, 1, true); err == nil {
		t.Fatal("invalid problem must error")
	}
}
