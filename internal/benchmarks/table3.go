package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
	"gobeagle/internal/cpuimpl"
)

// Table3Row is one row of Table III: CPU threading optimizations for the
// core partial-likelihoods function (single precision, 10,000 patterns),
// extended with the hybrid op×pattern scheduler.
type Table3Row struct {
	Tips         int
	Serial       float64 // GFLOPS
	Futures      float64
	ThreadCreate float64
	ThreadPool   float64
	Hybrid       float64
	Speedup      float64 // thread-pool / serial
}

// table3Flags are the threading selections compared by the Table III
// machinery, in column order.
var table3Flags = []gobeagle.Flags{
	0, gobeagle.FlagThreadingFutures,
	gobeagle.FlagThreadingThreadCreate, gobeagle.FlagThreadingThreadPool,
	gobeagle.FlagThreadingThreadPoolHybrid,
}

// Table3 reproduces Table III: the threading designs against the serial
// baseline across tree sizes, on the modeled dual Xeon E5-2680v4. Every
// configuration is first executed for real to verify correctness.
func Table3(verifyPatterns int) ([]Table3Row, error) {
	model := DefaultCPUModel()
	var rows []Table3Row
	for _, tips := range []int{8, 16, 64, 128} {
		// Real execution pass (small pattern count keeps it fast); exercises
		// exactly the code paths being modeled.
		if verifyPatterns > 0 {
			vp, err := NewProblem(int64(tips), tips, 4, verifyPatterns, 4)
			if err != nil {
				return nil, err
			}
			for _, flags := range table3Flags {
				if _, err := HostEval(vp, flags|gobeagle.FlagPrecisionSingle, 1); err != nil {
					return nil, err
				}
			}
		}
		// Modeled throughput at the paper's problem size.
		p, err := NewProblem(int64(tips), tips, 4, 10000, 4)
		if err != nil {
			return nil, err
		}
		w := model.Desc.Cores
		row := Table3Row{
			Tips:         tips,
			Serial:       model.ThroughputGF(cpuimpl.Serial, 1, p, true),
			Futures:      model.ThroughputGF(cpuimpl.Futures, w, p, true),
			ThreadCreate: model.ThroughputGF(cpuimpl.ThreadCreate, w, p, true),
			ThreadPool:   model.ThroughputGF(cpuimpl.ThreadPool, w, p, true),
			Hybrid:       model.ThroughputGF(cpuimpl.ThreadPoolHybrid, w, p, true),
		}
		row.Speedup = row.ThreadPool / row.Serial
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders the rows in the paper's layout.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: CPU threading optimizations (single precision, 10,000 patterns)")
	fmt.Fprintln(w, "tips    serial   futures  thread-create  thread-pool  hybrid  speedup(x serial)")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d  %8.2f  %8.2f  %13.2f  %11.2f  %6.2f  %7.2f\n",
			r.Tips, r.Serial, r.Futures, r.ThreadCreate, r.ThreadPool, r.Hybrid, r.Speedup)
	}
}

// HybridRow is one row of the small-pattern extension of Table III: the
// regime where the whole-problem 512-pattern threshold makes the plain
// pattern-chunking strategies degrade to serial even though the tree offers
// abundant operation-level concurrency.
type HybridRow struct {
	Tips         int
	Patterns     int
	MaxLevel     int     // widest dependency level (independent operations)
	Serial       float64 // GFLOPS
	Futures      float64
	ThreadCreate float64
	ThreadPool   float64
	Hybrid       float64
	Gain         float64 // hybrid / thread-pool
}

// Table3Hybrid extends the Table III machinery into the small-pattern
// regime: wide trees at 128–512 patterns, where the hybrid op×pattern
// scheduler must beat (or match) the plain thread pool. Every configuration
// is executed for real at its actual problem size before being modeled.
func Table3Hybrid(verify bool) ([]HybridRow, error) {
	model := DefaultCPUModel()
	var rows []HybridRow
	for _, tips := range []int{32, 64} {
		for _, patterns := range []int{128, 256, 512} {
			p, err := NewProblem(int64(tips*1000+patterns), tips, 4, patterns, 4)
			if err != nil {
				return nil, err
			}
			if verify {
				for _, flags := range table3Flags {
					if _, err := HostEval(p, flags|gobeagle.FlagPrecisionSingle, 1); err != nil {
						return nil, err
					}
				}
			}
			maxLevel := 0
			for _, w := range p.LevelWidths() {
				if w > maxLevel {
					maxLevel = w
				}
			}
			w := model.Desc.Cores
			row := HybridRow{
				Tips:         tips,
				Patterns:     patterns,
				MaxLevel:     maxLevel,
				Serial:       model.ThroughputGF(cpuimpl.Serial, 1, p, true),
				Futures:      model.ThroughputGF(cpuimpl.Futures, w, p, true),
				ThreadCreate: model.ThroughputGF(cpuimpl.ThreadCreate, w, p, true),
				ThreadPool:   model.ThroughputGF(cpuimpl.ThreadPool, w, p, true),
				Hybrid:       model.ThroughputGF(cpuimpl.ThreadPoolHybrid, w, p, true),
			}
			row.Gain = row.Hybrid / row.ThreadPool
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintTable3Hybrid renders the small-pattern comparison.
func PrintTable3Hybrid(w io.Writer, rows []HybridRow) {
	fmt.Fprintln(w, "Table III extension: hybrid op x pattern scheduler at small pattern counts (single precision)")
	fmt.Fprintln(w, "tips  patterns  max-level    serial   futures  thread-create  thread-pool   hybrid  gain(x thread-pool)")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d  %8d  %9d  %8.2f  %8.2f  %13.2f  %11.2f  %7.2f  %7.2f\n",
			r.Tips, r.Patterns, r.MaxLevel, r.Serial, r.Futures, r.ThreadCreate, r.ThreadPool, r.Hybrid, r.Gain)
	}
}
