package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
	"gobeagle/internal/cpuimpl"
)

// Table3Row is one row of Table III: CPU threading optimizations for the
// core partial-likelihoods function (single precision, 10,000 patterns).
type Table3Row struct {
	Tips         int
	Serial       float64 // GFLOPS
	Futures      float64
	ThreadCreate float64
	ThreadPool   float64
	Speedup      float64 // thread-pool / serial
}

// Table3 reproduces Table III: the three CPU threading designs against the
// serial baseline across tree sizes, on the modeled dual Xeon E5-2680v4.
// Every configuration is first executed for real to verify correctness.
func Table3(verifyPatterns int) ([]Table3Row, error) {
	model := DefaultCPUModel()
	var rows []Table3Row
	for _, tips := range []int{8, 16, 64, 128} {
		// Real execution pass (small pattern count keeps it fast); exercises
		// exactly the code paths being modeled.
		if verifyPatterns > 0 {
			vp, err := NewProblem(int64(tips), tips, 4, verifyPatterns, 4)
			if err != nil {
				return nil, err
			}
			for _, flags := range []gobeagle.Flags{
				0, gobeagle.FlagThreadingFutures,
				gobeagle.FlagThreadingThreadCreate, gobeagle.FlagThreadingThreadPool,
			} {
				if _, err := HostEval(vp, flags|gobeagle.FlagPrecisionSingle, 1); err != nil {
					return nil, err
				}
			}
		}
		// Modeled throughput at the paper's problem size.
		p, err := NewProblem(int64(tips), tips, 4, 10000, 4)
		if err != nil {
			return nil, err
		}
		w := model.Desc.Cores
		row := Table3Row{
			Tips:         tips,
			Serial:       model.ThroughputGF(cpuimpl.Serial, 1, p, true),
			Futures:      model.ThroughputGF(cpuimpl.Futures, w, p, true),
			ThreadCreate: model.ThroughputGF(cpuimpl.ThreadCreate, w, p, true),
			ThreadPool:   model.ThroughputGF(cpuimpl.ThreadPool, w, p, true),
		}
		row.Speedup = row.ThreadPool / row.Serial
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders the rows in the paper's layout.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: CPU threading optimizations (single precision, 10,000 patterns)")
	fmt.Fprintln(w, "tips    serial   futures  thread-create  thread-pool  speedup(x serial)")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d  %8.2f  %8.2f  %13.2f  %11.2f  %7.2f\n",
			r.Tips, r.Serial, r.Futures, r.ThreadCreate, r.ThreadPool, r.Speedup)
	}
}
