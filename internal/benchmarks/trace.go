package benchmarks

import (
	"fmt"
	"io"

	"gobeagle"
)

// CaptureTrace runs a small multi-device evaluation with span tracing on and
// writes the resulting Chrome trace-event JSON. The instance pairs the host
// CPU (thread-pool-hybrid scheduling, so scheduler level and worker task
// spans appear) with the first accelerator resource (so modeled-clock kernel
// and transfer spans appear) under the multi-device engine (barrier and
// per-backend spans) — the three layers a useful heterogeneous timeline
// needs. Returns the number of exported spans.
func CaptureTrace(w io.Writer, evals int) (int, error) {
	if evals <= 0 {
		evals = 3
	}
	p, err := NewProblem(7, 16, 4, 2048, 4)
	if err != nil {
		return 0, err
	}
	cfg := p.InstanceConfig(0, gobeagle.FlagTrace|gobeagle.FlagPrecisionSingle|
		gobeagle.FlagThreadingThreadPoolHybrid)
	inst, err := gobeagle.NewMultiDeviceInstance(cfg, []int{0, 1}, nil)
	if err != nil {
		return 0, err
	}
	defer inst.Finalize()
	if err := p.Load(inst); err != nil {
		return 0, err
	}
	mats, lens, ops, root := p.Schedule()
	for i := 0; i < evals; i++ {
		if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
			return 0, err
		}
		if err := inst.UpdatePartials(ops); err != nil {
			return 0, err
		}
		lnL, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None)
		if err != nil {
			return 0, err
		}
		if !(lnL < 0) {
			return 0, fmt.Errorf("benchmarks: suspicious log likelihood %v in traced run", lnL)
		}
	}
	spans := inst.TraceSpanCount()
	if spans == 0 {
		return 0, fmt.Errorf("benchmarks: traced run recorded no spans")
	}
	return spans, inst.TraceJSON(w)
}
