package benchmarks

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"gobeagle/internal/loadgen"
	"gobeagle/internal/serve"
)

// This file implements the serving-layer load experiment: the same request
// stream is driven through the beagled serving stack twice — once against the
// warm-instance pool with cross-request micro-batching, once with the pool
// disabled (a fresh instance per request, the naive service design) — and the
// latency distributions are compared. The headline result is the p99 ratio:
// micro-batching turns hundreds of small concurrent evaluations into a few
// wide scheduler submissions, which is exactly the operating point the
// paper's CPU threading strategies are built for. Every pooled response is
// verified bit-identical to dedicated-instance evaluation while measuring.

// ServeRow is one serving mode's measured load result.
type ServeRow struct {
	Mode    string // "pooled" or "per-request"
	Clients int
	Report  loadgen.Report
}

// serveShapes is the number of distinct problems cycled through the run, so
// the pool serves real traffic rather than one memoized request.
const serveShapes = 4

// serveProblem generates one deterministic problem: a random 16-tip tree
// under HKY85+Γ4 with an alignment that compresses into the 128-pattern
// bucket.
func serveProblem(seed int64, tips, sites int) *serve.EvaluateRequest {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	names := make([]string, tips)
	leaves := make([]string, tips)
	root := make([]byte, sites)
	for i := range root {
		root[i] = bases[rng.Intn(4)]
	}
	seqs := map[string]string{}
	for t := 0; t < tips; t++ {
		names[t] = fmt.Sprintf("x%d", t)
		leaf := append([]byte(nil), root...)
		for i := range leaf {
			if rng.Float64() < 0.12 {
				leaf[i] = bases[rng.Intn(4)]
			}
		}
		seqs[names[t]] = string(leaf)
		leaves[t] = fmt.Sprintf("%s:%.4f", names[t], 0.02+0.2*rng.Float64())
	}
	for len(leaves) > 1 {
		i := rng.Intn(len(leaves))
		a := leaves[i]
		leaves = append(leaves[:i], leaves[i+1:]...)
		j := rng.Intn(len(leaves))
		leaves[j] = fmt.Sprintf("(%s,%s):%.4f", a, leaves[j], 0.02+0.1*rng.Float64())
	}
	newick := leaves[0]
	if i := strings.LastIndex(newick, ")"); i >= 0 {
		newick = newick[:i+1]
	}
	return &serve.EvaluateRequest{
		Newick:    newick + ";",
		Model:     serve.ModelSpec{Type: "HKY85", Kappa: 2 + rng.Float64(), Frequencies: []float64{0.3, 0.2, 0.2, 0.3}},
		Gamma:     &serve.GammaSpec{Alpha: 0.5 + rng.Float64(), Categories: 4},
		Sequences: seqs,
	}
}

// serveLoadFraction is the offered open-loop load as a fraction of the
// calibrated per-request capacity: high enough that queueing discipline and
// per-request overhead show up in the tail, low enough that both modes are
// below saturation on a quiet machine.
const serveLoadFraction = 0.8

// Serve runs the load experiment: open-loop Poisson arrivals (latency
// measured from intended arrival, wrk2-style, so backlog is charged to the
// lagging mode rather than hidden by a coordinated generator) with up to
// `clients` requests in flight, against each serving mode in turn. The
// offered rate is calibrated to serveLoadFraction of the per-request mode's
// sequential capacity. Returns the per-mode rows and the per-request/pooled
// p99 ratio (how many times worse the naive design's tail is).
func Serve(clients, requests int) ([]ServeRow, float64, error) {
	const tips, sites = 16, 128
	problems := make([]*serve.EvaluateRequest, serveShapes)
	want := make([]float64, serveShapes)

	// Reference answers from dedicated instances; every measured response
	// must match them bit-for-bit. The timed section doubles as the capacity
	// calibration for the open-loop rate.
	refOpts := serve.DefaultOptions()
	refOpts.DisablePool = true
	ref := serve.NewServer(refOpts)
	for i := range problems {
		problems[i] = serveProblem(int64(1000+i), tips, sites)
		resp, code, err := ref.Evaluate(context.Background(), problems[i])
		if err != nil {
			ref.Close()
			return nil, 0, fmt.Errorf("reference evaluation (HTTP %d): %w", code, err)
		}
		want[i] = resp.LogLikelihood
	}
	// Calibration: one long sequential pass, mean service time. The mean over
	// a pass long enough to absorb several GC cycles estimates *sustained*
	// capacity; a best-of-N minimum would overestimate it (and with high
	// variance), swinging the offered load around the saturation knee where
	// p99 — and therefore the measured ratio — is hypersensitive.
	const calibration = 256
	calStart := time.Now()
	for i := 0; i < calibration; i++ {
		if _, _, err := ref.Evaluate(context.Background(), problems[i%serveShapes]); err != nil {
			ref.Close()
			return nil, 0, fmt.Errorf("calibration: %w", err)
		}
	}
	service := time.Since(calStart) / calibration
	ref.Close()

	run := func(pooled bool, rate float64, budget, warmup int) (loadgen.Report, error) {
		opts := serve.DefaultOptions()
		opts.DisablePool = !pooled
		// Pure sweep coalescing: under load the executor batches whatever has
		// queued behind the running batch, without holding sparse requests
		// hostage to a timer. The daemon default keeps a small window (it
		// improves fill for sparse cross-tenant traffic); for a saturating
		// load test the window only adds a latency floor.
		opts.Window = 0
		s := serve.NewServer(opts)
		defer s.Close()
		var mu sync.Mutex
		var verifyErr error
		rep := loadgen.Run(context.Background(), loadgen.Options{
			Concurrency:    clients,
			Requests:       budget,
			WarmupRequests: warmup,
			RatePerSec:     rate,
			Poisson:        true,
			Seed:           7,
		}, func(ctx context.Context, worker, seq int) loadgen.Result {
			shape := (worker + seq) % serveShapes
			resp, code, err := s.Evaluate(ctx, problems[shape])
			if err != nil {
				return loadgen.Result{Err: err}
			}
			if resp.LogLikelihood != want[shape] {
				err := fmt.Errorf("shape %d: served lnL %v != dedicated-instance %v",
					shape, resp.LogLikelihood, want[shape])
				mu.Lock()
				verifyErr = err
				mu.Unlock()
				return loadgen.Result{Err: err}
			}
			return loadgen.Result{Code: code}
		})
		mu.Lock()
		defer mu.Unlock()
		if verifyErr != nil {
			return rep, verifyErr
		}
		if rep.Errors > 0 {
			return rep, fmt.Errorf("%d requests failed", rep.Errors)
		}
		return rep, nil
	}

	// The machine's absolute capacity drifts between and during runs (CI
	// runners are shared), so a rate derived from calibration alone lands on
	// either side of the queueing knee unpredictably — below it both designs
	// have trivial tails and the ratio collapses to ~1. Anchor the operating
	// point behaviorally instead: probe the per-request mode with short
	// bursts, adjusting the offered rate until the naive design shows
	// sustained queueing (median latency several service times) without
	// collapsing. That is the regime the experiment is about — load that
	// makes one-instance-per-request visibly queue.
	rate := serveLoadFraction * float64(time.Second) / float64(service)
	for probe := 0; probe < 6; probe++ {
		rep, err := run(false, rate, requests/8, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("rate probe: %w", err)
		}
		if rep.P50 > 24*service {
			rate *= 0.85
		} else if rep.P50 < 4*service {
			rate *= 1.15
		} else {
			break
		}
	}

	// Paired trials with a median-of-ratios estimate. Open-loop p99 on a
	// shared (often single-core) runner is heavy-tailed: one external noise
	// event can multiply a trial's tail severalfold, and the ratio of two
	// independently-timed heavy-tailed measurements is wildly unstable.
	// Pairing each pooled trial with an immediately following per-request
	// trial cancels slow machine drift, and the median across pairs rejects
	// trials a noise event disturbed.
	//
	// A pair only counts when it measured the stated operating regime —
	// offered load at which the naive design visibly queues while the pooled
	// design stays healthy (the serving-SLO framing: tail latency at a given
	// utilization). Machine-speed drift after the probe can push the rate
	// past both designs' (near-equal) saturation points, where every
	// discipline degrades alike and the pair measures only the overload
	// backlog; such pairs adjust the rate and are retried rather than
	// averaged in. A pooled-side regression still fails the gate: if the
	// pooled path queues wherever the naive path queues, no rate satisfies
	// the validity condition and the loop falls back to reporting the
	// degenerate pairs it saw.
	const trials = 5
	var pooledRep, perReqRep loadgen.Report
	ratios := make([]float64, 0, trials)
	fallback := 0.0
	for attempt, valid := 0, 0; attempt < 12 && valid < trials; attempt++ {
		p, err := run(true, rate, requests, clients)
		if err != nil {
			return nil, 0, fmt.Errorf("pooled mode: %w", err)
		}
		d, err := run(false, rate, requests, clients)
		if err != nil {
			return nil, 0, fmt.Errorf("per-request mode: %w", err)
		}
		if p.P99 > 0 {
			fallback = float64(d.P99) / float64(p.P99)
		}
		if pooledRep.Requests == 0 {
			pooledRep, perReqRep = p, d // degenerate-run fallback rows
		}
		if p.P50 > 16*service {
			rate *= 0.85 // overshot: even the pooled design is saturated
			continue
		}
		if d.P50 < 4*service {
			rate *= 1.15 // undershot: the naive design is not queueing
			continue
		}
		valid++
		ratios = append(ratios, fallback)
		// Keep each mode's least-disturbed valid trial for the latency rows.
		if valid == 1 || p.P99 < pooledRep.P99 {
			pooledRep = p
		}
		if valid == 1 || d.P99 < perReqRep.P99 {
			perReqRep = d
		}
	}
	if len(ratios) == 0 && fallback > 0 {
		ratios = append(ratios, fallback)
	}

	rows := []ServeRow{
		{Mode: "pooled", Clients: clients, Report: pooledRep},
		{Mode: "per-request", Clients: clients, Report: perReqRep},
	}
	if len(ratios) == 0 {
		return rows, 0, fmt.Errorf("no valid p99 measurements")
	}
	sort.Float64s(ratios)
	return rows, ratios[len(ratios)/2], nil
}

// PrintServe renders the experiment.
func PrintServe(w io.Writer, rows []ServeRow, ratio float64) {
	fmt.Fprintf(w, "Serving-layer load test: warm-instance pooling + micro-batching vs one instance per request\n")
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s %10s\n",
		"mode", "clients", "req/s", "p50", "p95", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %10.1f %10s %10s %10s %10s\n",
			r.Mode, r.Clients, r.Report.RPS,
			r.Report.P50.Round(10*time.Microsecond),
			r.Report.P95.Round(10*time.Microsecond),
			r.Report.P99.Round(10*time.Microsecond),
			r.Report.Max.Round(10*time.Microsecond))
	}
	fmt.Fprintf(w, "p99(per-request) / p99(pooled) = %.2fx (all pooled responses bit-identical to dedicated instances)\n", ratio)
}

// durMs converts a duration to float milliseconds for the JSON records.
func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ServeReport converts the experiment to its machine-readable record set:
// one informational row per mode (latencies and throughput) plus the gated
// ratio record, whose Speedup must not regress below the committed baseline.
func ServeReport(rows []ServeRow, ratio float64) Report {
	rep := Report{
		Experiment:  "serve",
		Description: "beagled serving layer under concurrent load: warm-instance micro-batching vs per-request instances",
		Unit:        "p99 latency ratio",
	}
	for _, r := range rows {
		rep.Records = append(rep.Records, Record{
			Implementation: "beagled", Strategy: r.Mode,
			Model: "nucleotide", Precision: "double",
			States: 4, Patterns: 128, Categories: 4, Tips: 16,
			Threads: r.Clients,
			P50Ms:   durMs(r.Report.P50),
			P95Ms:   durMs(r.Report.P95),
			P99Ms:   durMs(r.Report.P99),
			RPS:     r.Report.RPS,
		})
	}
	rep.Records = append(rep.Records, Record{
		Implementation: "beagled", Strategy: "pooled-vs-per-request",
		Model: "nucleotide", Precision: "double",
		States: 4, Patterns: 128, Categories: 4, Tips: 16,
		Threads: rows[0].Clients,
		Speedup: ratio,
	})
	return rep
}
