package benchmarks

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// This file implements the benchmark regression gate: a committed baseline
// BENCH_<experiment>.json is compared record-by-record against a fresh run,
// and per-record throughput deltas beyond a noise tolerance fail the gate.
// Records are matched on their full configuration identity (device,
// implementation, strategy and problem shape); the compared metric is
// effective GFLOPS when present and the speedup factor otherwise (the
// rebalance and fig6 experiments report speedups, not GFLOPS).

// ReadReport loads a machine-readable BENCH_<experiment>.json report.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("benchmarks: %s: %w", path, err)
	}
	if rep.Experiment == "" {
		return Report{}, fmt.Errorf("benchmarks: %s: report has no experiment name", path)
	}
	return rep, nil
}

// recordKey is the configuration identity a record is matched on across
// runs: everything except the measured metrics.
func recordKey(r Record) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|s%d|p%d|c%d|t%d|th%d|wg%d",
		r.Device, r.Implementation, r.Strategy, r.Model, r.Precision,
		r.States, r.Patterns, r.Categories, r.Tips, r.Threads, r.WorkGroup)
}

// metric returns the compared measurement of a record and its unit label:
// GFLOPS when recorded, the speedup factor otherwise.
func metric(r Record) (float64, string) {
	if r.GFLOPS > 0 {
		return r.GFLOPS, "GFLOPS"
	}
	return r.Speedup, "speedup"
}

// Delta is one record's baseline-to-current comparison.
type Delta struct {
	Key     string  `json:"key"`
	Unit    string  `json:"unit"`
	Base    float64 `json:"base"`
	Current float64 `json:"current"`
	// Change is the relative delta (Current-Base)/Base; negative means the
	// current run is slower.
	Change float64 `json:"change"`
	// Regression marks deltas below the gate's tolerance.
	Regression bool `json:"regression"`
}

// Comparison is the full result of gating one experiment.
type Comparison struct {
	Experiment string  `json:"experiment"`
	Tolerance  float64 `json:"tolerance"`
	Deltas     []Delta `json:"deltas"`
	// Missing lists baseline records absent from the current run (a gate
	// failure: silently dropped coverage must not pass); Added lists new
	// records with no baseline (informational).
	Missing []string `json:"missing,omitempty"`
	Added   []string `json:"added,omitempty"`
}

// Regressions counts deltas that tripped the gate.
func (c Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// Failed reports whether the gate should fail the run: any regression beyond
// tolerance, or baseline records the current run no longer produces.
func (c Comparison) Failed() bool { return c.Regressions() > 0 || len(c.Missing) > 0 }

// DefaultTolerance is the gate's relative noise allowance: a record must be
// more than 10% below its baseline to count as a regression.
const DefaultTolerance = 0.10

// Compare gates a current report against its baseline. tolerance ≤ 0 uses
// DefaultTolerance. Records with a zero baseline metric are compared only
// for presence (a ratio against zero is meaningless).
func Compare(baseline, current Report, tolerance float64) (Comparison, error) {
	if baseline.Experiment != current.Experiment {
		return Comparison{}, fmt.Errorf("benchmarks: comparing %q against baseline %q",
			current.Experiment, baseline.Experiment)
	}
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	cur := make(map[string]Record, len(current.Records))
	for _, r := range current.Records {
		cur[recordKey(r)] = r
	}
	cmp := Comparison{Experiment: baseline.Experiment, Tolerance: tolerance}
	seen := map[string]bool{}
	for _, base := range baseline.Records {
		key := recordKey(base)
		seen[key] = true
		now, ok := cur[key]
		if !ok {
			cmp.Missing = append(cmp.Missing, key)
			continue
		}
		baseVal, unit := metric(base)
		nowVal, _ := metric(now)
		if baseVal <= 0 {
			continue
		}
		change := (nowVal - baseVal) / baseVal
		cmp.Deltas = append(cmp.Deltas, Delta{
			Key: key, Unit: unit, Base: baseVal, Current: nowVal,
			Change:     change,
			Regression: change < -tolerance,
		})
	}
	for _, r := range current.Records {
		if key := recordKey(r); !seen[key] {
			cmp.Added = append(cmp.Added, key)
		}
	}
	sort.Slice(cmp.Deltas, func(i, j int) bool { return cmp.Deltas[i].Change < cmp.Deltas[j].Change })
	return cmp, nil
}

// PrintComparison renders the gate result; regressions and missing records
// first, then the best and worst deltas.
func PrintComparison(w io.Writer, c Comparison) {
	status := "PASS"
	if c.Failed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "benchmark gate [%s]: %s — %d records compared, %d regressions beyond %.0f%%, %d missing\n",
		c.Experiment, status, len(c.Deltas), c.Regressions(), c.Tolerance*100, len(c.Missing))
	for _, key := range c.Missing {
		fmt.Fprintf(w, "  MISSING %s\n", key)
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	shown := 0
	for _, d := range c.Deltas {
		// Regressions always print; healthy deltas only the five largest moves.
		if !d.Regression && shown >= 5 {
			break
		}
		mark := " "
		if d.Regression {
			mark = "REGRESSION"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%.3f -> %.3f %s\t%+.1f%%\n",
			mark, shortKey(d.Key), d.Base, d.Current, d.Unit, d.Change*100)
		shown++
	}
	tw.Flush()
	if len(c.Added) > 0 {
		fmt.Fprintf(w, "  %d records have no baseline yet (regenerate baselines to cover them)\n", len(c.Added))
	}
}

// shortKey compresses a record key for table output by dropping empty
// segments.
func shortKey(key string) string {
	parts := strings.Split(key, "|")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", "s0", "p0", "c0", "t0", "th0", "wg0":
			continue
		}
		out = append(out, p)
	}
	return strings.Join(out, "|")
}
