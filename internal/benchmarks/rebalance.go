package benchmarks

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/multiimpl"
)

// The rebalance experiment demonstrates the adaptive multi-device
// rebalancer (§IX's dynamic load balancing) under a controlled throughput
// skew: two backends run the same serial CPU implementation, but one is
// wrapped to sleep a deterministic per-pattern-operation delay making it 4×
// slower. Starting from an even split — the pathology the precision-blind
// default shares used to produce — the experiment measures the batch wall
// time of the static even split, of the adaptive engine after it has
// rebalanced, and of the oracle static 4:1 split, and reports when the
// adaptive engine converged and how many patterns it migrated.

// RebalanceRow is one phase of the rebalance experiment.
type RebalanceRow struct {
	Phase     string        // "static-even", "adaptive", "oracle-4to1"
	Split     string        // final pattern split, e.g. "819:205"
	BatchWall time.Duration // fastest measured UpdatePartials batch
	Speedup   float64       // vs the static even split
	// Adaptive-phase extras (zero elsewhere).
	ConvergedAtBatch int
	PatternsMigrated int
}

// rebalanceUnit is the synthetic per-pattern-operation delay of the fast
// backend; the slow backend sleeps 4× this. The delays dwarf the real
// kernel time, so the measured optimum is the 4:1 oracle.
const rebalanceUnit = time.Microsecond

// slowedEngine wraps a real engine with a deterministic per-pattern-op
// sleep, and forwards pattern migration while tracking its share.
type slowedEngine struct {
	engine.Engine
	patterns int
	perOp    time.Duration
}

func (s *slowedEngine) UpdatePartials(ops []engine.Operation) error {
	time.Sleep(time.Duration(s.patterns*len(ops)) * s.perOp)
	return s.Engine.UpdatePartials(ops)
}

func (s *slowedEngine) DetachPatterns(fromHigh bool, n int) (*engine.PatternBlock, error) {
	blk, err := s.Engine.(engine.PatternMigrator).DetachPatterns(fromHigh, n)
	if err == nil {
		s.patterns -= n
	}
	return blk, err
}

func (s *slowedEngine) AttachPatterns(atHigh bool, blk *engine.PatternBlock) error {
	err := s.Engine.(engine.PatternMigrator).AttachPatterns(atHigh, blk)
	if err == nil {
		s.patterns += blk.Patterns
	}
	return err
}

func slowedBuilder(perOp time.Duration) multiimpl.Builder {
	return func(sub engine.Config) (engine.Engine, error) {
		e, err := cpuimpl.New(sub, cpuimpl.Serial)
		if err != nil {
			return nil, err
		}
		return &slowedEngine{Engine: e, patterns: sub.Dims.PatternCount, perOp: perOp}, nil
	}
}

// loadEngine pushes the problem's data into an internal engine.
func (p *Problem) loadEngine(e engine.Engine) error {
	ed, err := p.Model.Eigen()
	if err != nil {
		return err
	}
	steps := []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(p.Rates.Rates),
		e.SetCategoryWeights(p.Rates.Weights),
		e.SetStateFrequencies(p.Model.Frequencies),
		e.SetPatternWeights(p.Patterns.Weights),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	for i := 0; i < p.Tree.TipCount; i++ {
		if err := e.SetTipStates(i, p.Patterns.TipStates(i)); err != nil {
			return err
		}
	}
	sched := p.Tree.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	return e.UpdateTransitionMatrices(0, mats, lens)
}

// fastestBatch measures the fastest of k UpdatePartials batches.
func fastestBatch(e engine.Engine, ops []engine.Operation, k int) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < k; i++ {
		t0 := time.Now()
		if err := e.UpdatePartials(ops); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

func splitString(e *multiimpl.Engine) string {
	lo, hi := e.Ranges()
	out := ""
	for i := range lo {
		if i > 0 {
			out += ":"
		}
		out += fmt.Sprintf("%d", hi[i]-lo[i])
	}
	return out
}

// Rebalance runs the adaptive-rebalancing experiment and returns one row per
// phase.
func Rebalance() ([]RebalanceRow, error) {
	p, err := NewProblem(99, 16, 4, 1024, 4)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		TipCount:        p.Tree.TipCount,
		PartialsBuffers: p.Tree.NodeCount(),
		MatrixBuffers:   p.Tree.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    0,
		Dims:            p.Dims,
	}
	builders := func() []multiimpl.Builder {
		return []multiimpl.Builder{slowedBuilder(rebalanceUnit), slowedBuilder(4 * rebalanceUnit)}
	}
	ops := p.EngineOps()
	const measure = 5

	run := func(e *multiimpl.Engine, warm int) (time.Duration, error) {
		if err := p.loadEngine(e); err != nil {
			return 0, err
		}
		for i := 0; i < warm; i++ {
			if err := e.UpdatePartials(ops); err != nil {
				return 0, err
			}
		}
		return fastestBatch(e, ops, measure)
	}

	// Phase 1: the static even split — what precision-blind default shares
	// gave a CPU+GPU pair in double precision.
	even, err := multiimpl.New(cfg, builders(), []float64{1, 1})
	if err != nil {
		return nil, err
	}
	defer even.Close()
	evenWall, err := run(even, 1)
	if err != nil {
		return nil, err
	}
	rows := []RebalanceRow{{Phase: "static-even", Split: splitString(even), BatchWall: evenWall, Speedup: 1}}

	// Phase 2: adaptive — same even start, rebalancer on.
	adaptive, err := multiimpl.NewBalanced(cfg, builders(), []float64{1, 1},
		multiimpl.Options{Rebalance: true, Interval: 2})
	if err != nil {
		return nil, err
	}
	defer adaptive.Close()
	adaptiveWall, err := run(adaptive, 10)
	if err != nil {
		return nil, err
	}
	stats, _ := adaptive.RebalanceStats()
	converged := 0
	if len(stats.Events) > 0 {
		converged = stats.Events[0].Batch
	}
	rows = append(rows, RebalanceRow{
		Phase: "adaptive", Split: splitString(adaptive), BatchWall: adaptiveWall,
		Speedup:          float64(evenWall) / float64(adaptiveWall),
		ConvergedAtBatch: converged,
		PatternsMigrated: stats.PatternsMigrated,
	})

	// Phase 3: the oracle static 4:1 split.
	oracle, err := multiimpl.New(cfg, builders(), []float64{4, 1})
	if err != nil {
		return nil, err
	}
	defer oracle.Close()
	oracleWall, err := run(oracle, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, RebalanceRow{
		Phase: "oracle-4to1", Split: splitString(oracle), BatchWall: oracleWall,
		Speedup: float64(evenWall) / float64(oracleWall),
	})
	return rows, nil
}

// PrintRebalance renders the experiment as a table.
func PrintRebalance(w io.Writer, rows []RebalanceRow) {
	fmt.Fprintln(w, "Adaptive multi-device rebalancing with a synthetic 4x-slowed backend (§IX)")
	fmt.Fprintln(w, "two serial CPU backends, 1024 patterns, 16 tips, 4 categories")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tsplit\tbatch wall\tspeedup vs even")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%.2f\n", r.Phase, r.Split, r.BatchWall.Round(10*time.Microsecond), r.Speedup)
	}
	tw.Flush()
	for _, r := range rows {
		if r.Phase == "adaptive" && r.ConvergedAtBatch > 0 {
			fmt.Fprintf(w, "adaptive engine first rebalanced after batch %d, migrating %d patterns in total\n",
				r.ConvergedAtBatch, r.PatternsMigrated)
		}
	}
}

// RebalanceReport converts the experiment to the machine-readable form.
func RebalanceReport(rows []RebalanceRow) Report {
	rep := Report{
		Experiment:  "rebalance",
		Description: "adaptive multi-device rebalancing vs static splits with a synthetic 4x-slowed backend",
		Unit:        "speedup",
	}
	for _, r := range rows {
		rep.Records = append(rep.Records, Record{
			Device:         "synthetic 4x-skewed pair",
			Implementation: r.Phase,
			Strategy:       "multi-device",
			Model:          "nucleotide", Precision: "double",
			States: 4, Patterns: 1024, Categories: 4, Tips: 16,
			Speedup: r.Speedup,
		})
	}
	return rep
}
