package benchmarks

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Record is one machine-readable benchmark measurement: the effective
// throughput (or speedup) of one (device, strategy, problem-shape)
// configuration. Fields that do not apply to an experiment are omitted.
type Record struct {
	// Device names the hardware the measurement ran on (or was modeled
	// for); Implementation the library implementation; Strategy the CPU
	// scheduling strategy or "device".
	Device         string `json:"device,omitempty"`
	Implementation string `json:"implementation,omitempty"`
	Strategy       string `json:"strategy,omitempty"`
	// Problem shape.
	Model      string `json:"model,omitempty"`
	Precision  string `json:"precision,omitempty"`
	States     int    `json:"states,omitempty"`
	Patterns   int    `json:"patterns,omitempty"`
	Categories int    `json:"categories,omitempty"`
	Tips       int    `json:"tips,omitempty"`
	Threads    int    `json:"threads,omitempty"`
	WorkGroup  int    `json:"work_group,omitempty"`
	// Results. GFLOPS is effective throughput per the paper's §V-A flop
	// accounting; Speedup is relative to the experiment's stated baseline.
	GFLOPS  float64 `json:"gflops,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	// Serving-layer results (the serve experiment): request latency
	// percentiles and throughput under concurrent load. Informational —
	// absolute latencies are too machine-dependent to gate; the gated
	// serve record carries the pooled-vs-per-request p99 ratio in Speedup.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	RPS   float64 `json:"rps,omitempty"`
}

// Report is the machine-readable form of one experiment, written as
// BENCH_<experiment>.json by beaglebench -json and consumed by the CI
// benchmark-smoke artifact.
type Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Unit        string   `json:"unit"`
	Records     []Record `json:"records"`
}

// WriteReport writes the report to dir/BENCH_<experiment>.json and returns
// the path.
func WriteReport(dir string, r Report) (string, error) {
	if r.Experiment == "" {
		return "", fmt.Errorf("benchmarks: report has no experiment name")
	}
	path := filepath.Join(dir, "BENCH_"+r.Experiment+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// xeonDevice labels the modeled CPU host shared by the CPU-side experiments.
const xeonDevice = "Xeon E5-2680v4 x2 (modeled)"

// Table3Report converts Table III rows: one record per (tree size,
// strategy), single precision, 10,000 patterns.
func Table3Report(rows []Table3Row) Report {
	rep := Report{
		Experiment:  "table3",
		Description: "CPU threading optimizations, single precision, 10,000 patterns",
		Unit:        "GFLOPS",
	}
	for _, r := range rows {
		for _, s := range []struct {
			strategy string
			gflops   float64
			threads  int
		}{
			{"serial", r.Serial, 1},
			{"futures", r.Futures, 0},
			{"thread-create", r.ThreadCreate, 0},
			{"thread-pool", r.ThreadPool, 0},
			{"thread-pool-hybrid", r.Hybrid, 0},
		} {
			rep.Records = append(rep.Records, Record{
				Device: xeonDevice, Implementation: "CPU", Strategy: s.strategy,
				Model: "nucleotide", Precision: "single",
				States: 4, Patterns: 10000, Categories: 4, Tips: r.Tips,
				Threads: s.threads, GFLOPS: s.gflops,
			})
		}
	}
	return rep
}

// Table3HybridReport converts the small-pattern hybrid-scheduler extension.
func Table3HybridReport(rows []HybridRow) Report {
	rep := Report{
		Experiment:  "table3hybrid",
		Description: "hybrid op x pattern scheduler at small pattern counts, single precision",
		Unit:        "GFLOPS",
	}
	for _, r := range rows {
		for _, s := range []struct {
			strategy string
			gflops   float64
		}{
			{"serial", r.Serial},
			{"futures", r.Futures},
			{"thread-create", r.ThreadCreate},
			{"thread-pool", r.ThreadPool},
			{"thread-pool-hybrid", r.Hybrid},
		} {
			rep.Records = append(rep.Records, Record{
				Device: xeonDevice, Implementation: "CPU", Strategy: s.strategy,
				Model: "nucleotide", Precision: "single",
				States: 4, Patterns: r.Patterns, Categories: 4, Tips: r.Tips,
				GFLOPS: s.gflops,
			})
		}
	}
	return rep
}

// Table4Report converts the FMA ablation: with/without records per
// (precision, patterns).
func Table4Report(rows []Table4Row) Report {
	rep := Report{
		Experiment:  "table4",
		Description: "OpenCL-GPU FMA kernel-build ablation on the AMD Radeon R9 Nano",
		Unit:        "GFLOPS",
	}
	for _, r := range rows {
		base := Record{
			Device: "Radeon R9 Nano", Strategy: "device",
			Model: "nucleotide", Precision: r.Precision,
			States: 4, Patterns: r.Patterns, Categories: 4, Tips: 16,
		}
		with := base
		with.Implementation = "OpenCL-GPU (FMA)"
		with.GFLOPS = r.WithFMA
		without := base
		without.Implementation = "OpenCL-GPU (no FMA)"
		without.GFLOPS = r.WithoutFMA
		rep.Records = append(rep.Records, without, with)
	}
	return rep
}

// Table5Report converts the work-group size sweep; speedups are relative to
// the GPU-style kernels on the same CPU device.
func Table5Report(rows []Table5Row) Report {
	rep := Report{
		Experiment:  "table5",
		Description: "OpenCL-x86 work-group size sweep on the dual Xeon E5-2680v4",
		Unit:        "GFLOPS",
	}
	for _, r := range rows {
		rep.Records = append(rep.Records, Record{
			Device: "Xeon E5-2680v4 x2", Implementation: r.Solution, Strategy: "device",
			Model: "nucleotide", Precision: "single",
			States: 4, Patterns: 10000, Categories: 4, Tips: 16,
			WorkGroup: r.WorkGroup, GFLOPS: r.Throughput, Speedup: r.Speedup,
		})
	}
	return rep
}

// Fig4Report converts the throughput sweep panels: one record per (series,
// pattern count) — the per-(device, strategy, states, patterns) effective
// GFLOPS behind the paper's Fig. 4.
func Fig4Report(name string, panels []Fig4Panel) Report {
	rep := Report{
		Experiment:  name,
		Description: "partial-likelihoods throughput across unique site pattern counts (Fig. 4)",
		Unit:        "GFLOPS",
	}
	for _, panel := range panels {
		states := 4
		if panel.Model == "codon" {
			states = 61
		}
		for _, s := range panel.Series {
			for i, pat := range s.Patterns {
				rep.Records = append(rep.Records, Record{
					Device: s.Name, Implementation: s.Name, Strategy: "device",
					Model: panel.Model, Precision: "single",
					States: states, Patterns: pat, Categories: 4, Tips: fig4Tips,
					GFLOPS: s.GFLOPS[i],
				})
			}
		}
	}
	return rep
}

// Fig5Report converts the multicore scaling curve.
func Fig5Report(points []Fig5Point) Report {
	rep := Report{
		Experiment:  "fig5",
		Description: "multicore scaling of the threaded model and OpenCL-x86 via device fission",
		Unit:        "GFLOPS",
	}
	for _, pt := range points {
		shape := Record{
			Device: "Xeon E5-2680v4 x2", Model: "nucleotide", Precision: "single",
			States: 4, Patterns: 10000, Categories: 4, Tips: 16, Threads: pt.Threads,
		}
		threaded := shape
		threaded.Implementation = "C++ threads"
		threaded.Strategy = "thread-pool"
		threaded.GFLOPS = pt.ThreadedModel
		x86 := shape
		x86.Implementation = "OpenCL-x86"
		x86.Strategy = "device"
		x86.GFLOPS = pt.OpenCLX86
		rep.Records = append(rep.Records, threaded, x86)
	}
	return rep
}

// Fig6Report converts the application-level speedups (unit: speedup factor
// over MrBayes-MPI double precision, not GFLOPS).
func Fig6Report(rows []Fig6Row) Report {
	rep := Report{
		Experiment:  "fig6",
		Description: "MrBayes total-runtime speedups vs MrBayes-MPI double precision",
		Unit:        "speedup",
	}
	for _, r := range rows {
		states := 4
		if r.Model == "codon" {
			states = 61
		}
		rep.Records = append(rep.Records, Record{
			Implementation: r.Engine, Model: r.Model, Precision: r.Precision,
			States: states, Speedup: r.Speedup,
		})
	}
	return rep
}
