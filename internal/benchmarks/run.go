package benchmarks

import (
	"fmt"
	"time"

	"gobeagle"
	"gobeagle/internal/accelimpl"
	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/flops"
	"gobeagle/internal/kernels"
)

// DeviceEval measures one problem on an accelerator resource: it really
// executes the full evaluation (verifying the log likelihood), then times
// `reps` repetitions of the partial-likelihoods operations on the modeled
// device clock and returns the modeled throughput in effective GFLOPS.
func DeviceEval(p *Problem, resourceName, framework string, flags gobeagle.Flags, workGroup, reps int) (float64, error) {
	rsc, err := gobeagle.FindResource(resourceName, framework)
	if err != nil {
		return 0, err
	}
	cfg := p.InstanceConfig(rsc.ID, flags)
	cfg.WorkGroupSize = workGroup
	inst, err := gobeagle.NewInstance(cfg)
	if err != nil {
		return 0, err
	}
	defer inst.Finalize()
	if err := p.Load(inst); err != nil {
		return 0, err
	}
	if err := p.Verify(inst); err != nil {
		return 0, fmt.Errorf("benchmarks: %s: %w", inst.Implementation(), err)
	}
	q := inst.DeviceQueue()
	if q == nil {
		return 0, fmt.Errorf("benchmarks: resource %s has no device queue", resourceName)
	}
	_, _, ops, _ := p.Schedule()
	q.ResetTimers()
	for r := 0; r < reps; r++ {
		if err := inst.UpdatePartials(ops); err != nil {
			return 0, err
		}
	}
	elapsed := q.ModeledTime()
	return flops.GFLOPS(p.FlopsPerEval()*float64(reps), elapsed), nil
}

// accelModeledThroughput builds an accelerator engine directly on an
// arbitrary device handle (e.g. a fissioned sub-device that is not in the
// resource list), executes one full evaluation for real, and returns the
// modeled throughput.
func accelModeledThroughput(p *Problem, dev *device.Device, flags gobeagle.Flags) (float64, error) {
	t, err := accelModeledEvalTime(p, dev, flags, false)
	if err != nil {
		return 0, err
	}
	return flops.GFLOPS(p.FlopsPerEval(), t), nil
}

// accelModeledEvalTime returns the modeled duration of one full evaluation
// of the partials operations on an arbitrary device handle. With dryRun the
// kernel bodies are skipped (model-only timing; no correctness check).
func accelModeledEvalTime(p *Problem, dev *device.Device, flags gobeagle.Flags, dryRun bool) (time.Duration, error) {
	variant := accelimpl.OpenCLX86
	switch {
	case dev.Framework == device.CUDA:
		variant = accelimpl.CUDA
	case dev.Desc.Kind == device.KindGPU:
		variant = accelimpl.OpenCLGPU
	}
	cfg := engine.Config{
		TipCount:        p.Tree.TipCount,
		PartialsBuffers: p.Tree.NodeCount(),
		MatrixBuffers:   p.Tree.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    0,
		Dims: kernels.Dims{
			StateCount:    p.Dims.StateCount,
			PatternCount:  p.Dims.PatternCount,
			CategoryCount: p.Dims.CategoryCount,
		},
		SinglePrecision: flags&gobeagle.FlagPrecisionSingle != 0,
	}
	eng, err := accelimpl.New(cfg, variant, dev)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	ed, err := p.Model.Eigen()
	if err != nil {
		return 0, err
	}
	steps := []error{
		eng.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		eng.SetCategoryRates(p.Rates.Rates),
		eng.SetCategoryWeights(p.Rates.Weights),
		eng.SetStateFrequencies(p.Model.Frequencies),
		eng.SetPatternWeights(p.Patterns.Weights),
	}
	for _, err := range steps {
		if err != nil {
			return 0, err
		}
	}
	for i := 0; i < p.Tree.TipCount; i++ {
		if err := eng.SetTipStates(i, p.Patterns.TipStates(i)); err != nil {
			return 0, err
		}
	}
	sched := p.Tree.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := eng.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return 0, err
	}
	type queueHolder interface{ Queue() *device.Queue }
	q := eng.(queueHolder).Queue()
	q.SetDryRun(dryRun)
	q.ResetTimers()
	if err := eng.UpdatePartials(p.EngineOps()); err != nil {
		return 0, err
	}
	elapsed := q.ModeledTime() // partials kernels only
	if !dryRun {
		lnL, err := eng.CalculateRootLogLikelihoods(sched.Root, engine.None)
		if err != nil {
			return 0, err
		}
		if !(lnL < 0) {
			return 0, fmt.Errorf("benchmarks: suspicious log likelihood %v", lnL)
		}
	}
	return elapsed, nil
}

// HostEval really executes one problem on a host-CPU implementation and
// reports measured wall-clock throughput. On single-core build machines the
// threaded strategies cannot express parallelism, so the per-table
// experiments report the CPUModel numbers instead and use this only to
// verify the configuration executes correctly.
func HostEval(p *Problem, flags gobeagle.Flags, reps int) (float64, error) {
	inst, err := gobeagle.NewInstance(p.InstanceConfig(0, flags))
	if err != nil {
		return 0, err
	}
	defer inst.Finalize()
	if err := p.Load(inst); err != nil {
		return 0, err
	}
	if err := p.Verify(inst); err != nil {
		return 0, fmt.Errorf("benchmarks: %s: %w", inst.Implementation(), err)
	}
	_, _, ops, _ := p.Schedule()
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err := inst.UpdatePartials(ops); err != nil {
			return 0, err
		}
	}
	return flops.GFLOPS(p.FlopsPerEval()*float64(reps), time.Since(start)), nil
}
