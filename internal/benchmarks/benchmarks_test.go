package benchmarks

import (
	"bytes"
	"strings"
	"testing"

	"gobeagle"
)

func TestNewProblemShapes(t *testing.T) {
	for _, states := range []int{4, 20, 61, 7} {
		p, err := NewProblem(1, 8, states, 100, 2)
		if err != nil {
			t.Fatalf("states=%d: %v", states, err)
		}
		if p.Model.StateCount != states {
			t.Fatalf("model states %d want %d", p.Model.StateCount, states)
		}
		if p.Patterns.PatternCount() != 100 || p.Tree.TipCount != 8 {
			t.Fatal("problem geometry wrong")
		}
		if p.OpCount() != 7 {
			t.Fatalf("op count %d", p.OpCount())
		}
		if p.FlopsPerEval() <= 0 {
			t.Fatal("non-positive flops")
		}
	}
	if _, err := NewProblem(1, 1, 4, 100, 1); err == nil {
		t.Fatal("expected error for 1 tip")
	}
}

func TestProblemVerifyOnHostAndDevice(t *testing.T) {
	p, err := NewProblem(2, 6, 4, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HostEval(p, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DeviceEval(p, "Radeon R9 Nano", "OpenCL", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLevelWidthsSumToOps(t *testing.T) {
	p, err := NewProblem(3, 32, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range p.LevelWidths() {
		total += w
	}
	if total != p.OpCount() {
		t.Fatalf("level widths sum %d want %d", total, p.OpCount())
	}
}

func TestCPUModelOrderings(t *testing.T) {
	m := DefaultCPUModel()
	p, err := NewProblem(4, 16, 4, 10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial := m.ThroughputGF(0, 1, p, true) // cpuimpl.Serial
	futures := m.ThroughputGF(2, 56, p, true)
	create := m.ThroughputGF(3, 56, p, true)
	pool := m.ThroughputGF(4, 56, p, true)
	if !(pool > create && pool > futures && create > serial && futures > serial) {
		t.Fatalf("ordering violated: serial=%.1f futures=%.1f create=%.1f pool=%.1f",
			serial, futures, create, pool)
	}
	// Double precision must be slower than single.
	if m.ThroughputGF(4, 56, p, false) >= pool {
		t.Fatal("double precision not slower")
	}
	// Below the threading threshold the strategies degrade to serial.
	small, err := NewProblem(5, 16, 4, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.ThroughputGF(4, 56, small, true) != m.ThroughputGF(0, 1, small, true) {
		t.Fatal("threshold not honored in the model")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		// Thread-pool is the best plain strategy at every tree size (§VI-C).
		if !(r.ThreadPool > r.ThreadCreate && r.ThreadPool > r.Futures && r.ThreadPool > r.Serial) {
			t.Errorf("tips=%d: thread-pool not best: %+v", r.Tips, r)
		}
		// The hybrid scheduler never loses to the plain pool.
		if r.Hybrid < r.ThreadPool {
			t.Errorf("tips=%d: hybrid (%v) below thread-pool (%v)", r.Tips, r.Hybrid, r.ThreadPool)
		}
		if r.Speedup < 4 || r.Speedup > 25 {
			t.Errorf("tips=%d: speedup %v outside the paper's band", r.Tips, r.Speedup)
		}
	}
	// Serial throughput degrades on large trees (cache capacity).
	if !(rows[3].Serial < rows[0].Serial) {
		t.Error("serial rate did not degrade at 128 tips")
	}
	// Thread-pool throughput declines from 64 to 128 tips, as in the paper.
	if !(rows[3].ThreadPool < rows[2].ThreadPool) {
		t.Error("thread-pool rate did not decline at 128 tips")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "thread-pool") {
		t.Error("print output malformed")
	}
}

func TestTable3HybridShape(t *testing.T) {
	rows, err := Table3Hybrid(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		// The whole point of the hybrid scheduler: at 128–512 patterns with
		// ≥8 independent operations it must at least match the plain pool,
		// which degrades to serial below the 512-pattern threshold.
		if r.MaxLevel < 8 {
			t.Errorf("tips=%d: widest level %d < 8 independent ops", r.Tips, r.MaxLevel)
		}
		if r.Gain < 1 {
			t.Errorf("tips=%d patterns=%d: hybrid gain %v < 1 over thread-pool",
				r.Tips, r.Patterns, r.Gain)
		}
		if r.Hybrid < r.Serial {
			t.Errorf("tips=%d patterns=%d: hybrid (%v) below serial (%v)",
				r.Tips, r.Patterns, r.Hybrid, r.Serial)
		}
	}
	// Below the 512-pattern threshold the plain pool is stuck at serial
	// speed while the hybrid exploits op-level parallelism, so the gain
	// must be substantial, not merely ≥1.
	for _, r := range rows {
		if r.Patterns < 512 && r.Gain < 2 {
			t.Errorf("tips=%d patterns=%d: expected a large hybrid gain below the threshold, got %v",
				r.Tips, r.Patterns, r.Gain)
		}
	}
	var buf bytes.Buffer
	PrintTable3Hybrid(&buf, rows)
	if !strings.Contains(buf.String(), "hybrid") {
		t.Error("print output malformed")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		if r.PercentGain < 0 {
			t.Errorf("FMA must never hurt: %+v", r)
		}
		if r.WithFMA < r.WithoutFMA {
			t.Errorf("with-FMA slower: %+v", r)
		}
	}
	// Double precision gains more from FMA than single (Table IV: ~10–12%
	// vs ~1–2%).
	bestSingle, bestDouble := 0.0, 0.0
	for _, r := range rows {
		if r.Precision == "single" && r.PercentGain > bestSingle {
			bestSingle = r.PercentGain
		}
		if r.Precision == "double" && r.PercentGain > bestDouble {
			bestDouble = r.PercentGain
		}
	}
	if bestDouble <= bestSingle {
		t.Errorf("double gain (%v%%) must exceed single gain (%v%%)", bestDouble, bestSingle)
	}
	if bestDouble < 3 || bestDouble > 20 {
		t.Errorf("double-precision gain %v%% outside the paper's band", bestDouble)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "FMA") {
		t.Error("print output malformed")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("row count %d", len(rows))
	}
	ref := rows[0]
	if ref.Solution != "OpenCL-GPU" {
		t.Fatal("first row must be the GPU-style reference")
	}
	for _, r := range rows[1:] {
		// Every x86 work-group size beats the GPU-style kernels on the CPU
		// by a large factor (Table V: 5–6×).
		if r.Speedup < 3 || r.Speedup > 10 {
			t.Errorf("wg=%d: speedup %v outside the paper's band", r.WorkGroup, r.Speedup)
		}
	}
	// Throughput grows with work-group size and is near peak by 256
	// patterns (within 15% of the 1024-pattern value).
	for i := 2; i < len(rows); i++ {
		if rows[i].Throughput < rows[i-1].Throughput*0.98 {
			t.Errorf("throughput regressed at wg=%d", rows[i].WorkGroup)
		}
	}
	peak := rows[len(rows)-1].Throughput
	at256 := rows[3].Throughput
	if at256 < 0.85*peak {
		t.Errorf("wg=256 (%v) not near peak (%v)", at256, peak)
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "OpenCL-x86") {
		t.Error("print output malformed")
	}
}

func TestFig4Shape(t *testing.T) {
	panels, err := Fig4With([]int{1000, 10000, 100000}, []int{316, 3162, 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("panel count %d", len(panels))
	}
	series := func(panel Fig4Panel, name string) []float64 {
		for _, s := range panel.Series {
			if strings.Contains(s.Name, name) {
				return s.GFLOPS
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	nuc, codon := panels[0], panels[1]

	// GPU throughput strongly scales with pattern count for nucleotide
	// models (§VIII-A1).
	r9 := series(nuc, "Radeon R9 Nano")
	if !(r9[0] < r9[1] && r9[1] < r9[2]) {
		t.Errorf("R9 Nano nucleotide curve not increasing: %v", r9)
	}
	// At large pattern counts the GPUs beat every CPU series.
	x86 := series(nuc, "OpenCL-x86")
	threads := series(nuc, "C++ threads: Intel Xeon E5")
	serial := series(nuc, "C++ serial")
	last := len(r9) - 1
	if !(r9[last] > x86[last] && r9[last] > threads[last] && r9[last] > serial[last]) {
		t.Errorf("R9 Nano not fastest at large sizes: r9=%v x86=%v threads=%v serial=%v",
			r9[last], x86[last], threads[last], serial[last])
	}
	// ~58× speedup over serial at the largest nucleotide size (paper: ~58).
	if ratio := r9[last] / serial[last]; ratio < 20 || ratio > 120 {
		t.Errorf("R9/serial speedup %v outside the paper's band", ratio)
	}
	// CUDA ≥ OpenCL on the same NVIDIA hardware (§VII-B1, Fig. 4).
	cuda := series(nuc, "CUDA: NVIDIA Quadro P5000")
	oclNV := series(nuc, "OpenCL-GPU: NVIDIA Quadro P5000")
	for i := range cuda {
		if cuda[i] < oclNV[i] {
			t.Errorf("OpenCL beats CUDA on the P5000 at point %d", i)
		}
	}
	// Codon models: higher throughput than nucleotide at matching device
	// and large size, and less sensitivity to pattern count (§VIII-A2).
	r9c := series(codon, "Radeon R9 Nano")
	if r9c[len(r9c)-1] <= r9[last] {
		t.Errorf("codon throughput (%v) should exceed nucleotide (%v)", r9c[len(r9c)-1], r9[last])
	}
	relRiseNuc := r9[last] / r9[0]
	relRiseCodon := r9c[len(r9c)-1] / r9c[0]
	if relRiseCodon >= relRiseNuc {
		t.Errorf("codon curve (rise %v) should be flatter than nucleotide (rise %v)", relRiseCodon, relRiseNuc)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, panels)
	if !strings.Contains(buf.String(), "codon") {
		t.Error("print output malformed")
	}
}

func TestFig5Shape(t *testing.T) {
	points, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 8 {
		t.Fatalf("point count %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.Threads != 56 {
		t.Fatalf("final thread count %d", last.Threads)
	}
	// Both implementations scale up substantially from 1 to 56 threads.
	if last.ThreadedModel < 4*first.ThreadedModel {
		t.Errorf("threaded model scaling too weak: %v -> %v", first.ThreadedModel, last.ThreadedModel)
	}
	if last.OpenCLX86 < 4*first.OpenCLX86 {
		t.Errorf("OpenCL-x86 scaling too weak: %v -> %v", first.OpenCLX86, last.OpenCLX86)
	}
	// Saturation: the last doubling (28→56 threads) gains far less than
	// the first (paper: saturation around 27 threads).
	var at28 Fig5Point
	for _, pt := range points {
		if pt.Threads == 28 {
			at28 = pt
		}
	}
	if last.ThreadedModel > at28.ThreadedModel*1.5 {
		t.Errorf("no saturation: 28 threads %v, 56 threads %v", at28.ThreadedModel, last.ThreadedModel)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, points)
	if !strings.Contains(buf.String(), "threads") {
		t.Error("print output malformed")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2 precisions × 5 engines.
	if len(rows) != 20 {
		t.Fatalf("row count %d", len(rows))
	}
	find := func(model, prec, engine string) float64 {
		for _, r := range rows {
			if r.Model == model && r.Precision == prec && strings.Contains(r.Engine, engine) {
				return r.Speedup
			}
		}
		t.Fatalf("row %s/%s/%s missing", model, prec, engine)
		return 0
	}
	// Codon speedups exceed nucleotide speedups for the same engine
	// ("speedups are largest under the codon models").
	for _, engine := range []string{"OpenCL-x86", "OpenCL-GPU", "C++ threads (Xeon E5"} {
		if find("codon", "single", engine) <= find("nucleotide", "single", engine) {
			t.Errorf("%s: codon speedup not larger than nucleotide", engine)
		}
	}
	// The headline: ~39× for the codon model on the dual Xeon (§I).
	headline := Headline(rows)
	if headline < 15 || headline > 80 {
		t.Errorf("headline speedup %v outside a plausible band around 39x", headline)
	}
	// Every library implementation beats the double-precision baseline.
	for _, r := range rows {
		if strings.Contains(r.Engine, "OpenCL") || strings.Contains(r.Engine, "threads (Xeon E5") {
			if r.Speedup <= 1 {
				t.Errorf("%+v: no speedup over baseline", r)
			}
		}
	}
	// The built-in SSE single bar is a modest speedup (paper ~1.7–1.9×).
	sse := find("nucleotide", "single", "MrBayes SSE")
	if sse < 1.2 || sse > 5 {
		t.Errorf("SSE single speedup %v outside a plausible band", sse)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if !strings.Contains(buf.String(), "headline") {
		t.Error("print output malformed")
	}
}

func TestDeviceEvalErrors(t *testing.T) {
	p, err := NewProblem(6, 4, 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeviceEval(p, "no such device", "OpenCL", 0, 0, 1); err == nil {
		t.Fatal("expected error for unknown device")
	}
	// The host CPU resource has no device queue.
	if _, err := DeviceEval(p, "CPU (host)", "", 0, 0, 1); err == nil {
		t.Fatal("expected error for host resource")
	}
	_ = gobeagle.FlagPrecisionSingle
}
