package telemetry

import (
	"sync/atomic"
	"time"
)

// TraceCapacity is the number of most-recent dependency-level records the
// batch tracer retains.
const TraceCapacity = 256

// LevelTrace is one recorded scheduler dependency level: the ops of a level
// are independent and were dispatched as Tasks concurrent (operation,
// pattern-chunk) tasks completing in Wall time. Batch numbers UpdatePartials
// calls 1-based; Level indexes the dependency level within the batch.
type LevelTrace struct {
	Batch uint64
	Level int
	Ops   int
	Tasks int
	Wall  time.Duration
}

// traceRing is a lock-free fixed-capacity ring of the most recent level
// traces. Writers claim monotonically increasing sequence numbers; each slot
// holds an immutable *LevelTrace behind an atomic pointer, so concurrent
// snapshots read consistent records without locking writers out.
type traceRing struct {
	next  atomic.Uint64
	slots [TraceCapacity]atomic.Pointer[traceSlot]
}

// traceSlot pairs a record with its global sequence number so snapshots can
// order records and detect wrap-around.
type traceSlot struct {
	seq   uint64
	trace LevelTrace
}

func (r *traceRing) add(t *LevelTrace) {
	seq := r.next.Add(1) - 1
	r.slots[seq%TraceCapacity].Store(&traceSlot{seq: seq, trace: *t})
}

func (r *traceRing) reset() {
	r.next.Store(0)
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
}

// snapshot returns the retained traces, oldest first.
func (r *traceRing) snapshot() []LevelTrace {
	var got []*traceSlot
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			got = append(got, s)
		}
	}
	// Insertion sort by sequence: the ring is small and nearly ordered.
	for i := 1; i < len(got); i++ {
		for j := i; j > 0 && got[j-1].seq > got[j].seq; j-- {
			got[j-1], got[j] = got[j], got[j-1]
		}
	}
	out := make([]LevelTrace, len(got))
	for i, s := range got {
		out[i] = s.trace
	}
	return out
}
