package telemetry

import (
	"testing"
	"time"

	"gobeagle/internal/flops"
)

// Zero-division guards: mean and GFLOPS accessors must yield zero, never
// panic or return NaN/Inf, for empty or zero-duration stats.

func TestKernelStatsMeansGuardZero(t *testing.T) {
	var empty KernelStats
	if got := empty.MeanPerOp(); got != 0 {
		t.Errorf("MeanPerOp on zero stats = %v, want 0", got)
	}
	if got := empty.MeanPerCall(); got != 0 {
		t.Errorf("MeanPerCall on zero stats = %v, want 0", got)
	}
	// Calls without ops (and vice versa): only the populated mean divides.
	callsOnly := KernelStats{Calls: 3, Total: 300}
	if got := callsOnly.MeanPerOp(); got != 0 {
		t.Errorf("MeanPerOp with zero ops = %v, want 0", got)
	}
	if got := callsOnly.MeanPerCall(); got != 100 {
		t.Errorf("MeanPerCall = %v, want 100", got)
	}
	opsOnly := KernelStats{Ops: 4, Total: 400}
	if got := opsOnly.MeanPerCall(); got != 0 {
		t.Errorf("MeanPerCall with zero calls = %v, want 0", got)
	}
	if got := opsOnly.MeanPerOp(); got != 100 {
		t.Errorf("MeanPerOp = %v, want 100", got)
	}
}

func TestGFLOPSGuardsZeroAndNegativeDuration(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		if got := flops.GFLOPS(1e12, d); got != 0 {
			t.Errorf("GFLOPS(1e12, %v) = %v, want 0", d, got)
		}
	}
	if got := flops.GFLOPS(2e9, time.Second); got != 2 {
		t.Errorf("GFLOPS(2e9, 1s) = %v, want 2", got)
	}
}

// TestSnapshotZeroDurationPartials covers the EffectiveGFLOPS path when flops
// were accounted but the partials kernel recorded zero wall time (possible on
// coarse clocks): the snapshot must report 0, not +Inf.
func TestSnapshotZeroDurationPartials(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	c.AddFlops(1e9)
	c.Record(KernelPartials, 10, 0)
	snap := c.Snapshot()
	if snap.EffectiveGFLOPS != 0 {
		t.Errorf("EffectiveGFLOPS with zero partials wall time = %v, want 0", snap.EffectiveGFLOPS)
	}
	ks := snap.Kernel(KernelPartials)
	if ks.MeanPerOp() != 0 || ks.MeanPerCall() != 0 {
		t.Errorf("zero-duration kernel means = %v/%v, want 0/0", ks.MeanPerOp(), ks.MeanPerCall())
	}
}
