package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"gobeagle/internal/flops"
	"gobeagle/internal/kernels"
)

func TestNilCollectorIsSafeAndDisabled(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	// None of these may panic.
	c.SetEnabled(true)
	c.SetLabels("impl", "strategy")
	c.Record(KernelPartials, 3, time.Millisecond)
	c.AddFlops(1e6)
	c.TraceLevel(1, 0, 4, 8, time.Millisecond)
	c.Reset()
	if got := c.NextBatch(); got != 0 {
		t.Fatalf("nil NextBatch = %d, want 0", got)
	}
	snap := c.Snapshot()
	if snap.Enabled || snap.Batches != 0 || len(snap.Kernels) != 0 || len(snap.Levels) != 0 {
		t.Fatalf("nil Snapshot not zero: %+v", snap)
	}
}

func TestDisabledCollectorRecordsNothing(t *testing.T) {
	c := New()
	if c.Enabled() {
		t.Fatal("new collector should start disabled")
	}
	c.Record(KernelPartials, 5, time.Millisecond)
	c.AddFlops(1e9)
	c.TraceLevel(1, 0, 5, 10, time.Millisecond)
	snap := c.Snapshot()
	if len(snap.Kernels) != 0 {
		t.Fatalf("disabled Record leaked into kernels: %+v", snap.Kernels)
	}
	if snap.TotalFlops != 0 {
		t.Fatalf("disabled AddFlops leaked: %v", snap.TotalFlops)
	}
	if len(snap.Levels) != 0 {
		t.Fatalf("disabled TraceLevel leaked: %+v", snap.Levels)
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	c.SetLabels("CPU-serial", "serial")

	c.Record(KernelPartials, 3, 2*time.Millisecond)
	c.Record(KernelPartials, 2, 1*time.Millisecond)
	c.Record(KernelRoot, 1, 500*time.Microsecond)
	dims := kernels.Dims{StateCount: 4, PatternCount: 1000, CategoryCount: 4}
	c.AddFlops(flops.PartialsOp(dims) * 5)

	snap := c.Snapshot()
	if snap.Implementation != "CPU-serial" || snap.Strategy != "serial" {
		t.Fatalf("labels not reported: %q/%q", snap.Implementation, snap.Strategy)
	}
	if !snap.Enabled {
		t.Fatal("snapshot should report enabled")
	}
	p := snap.Kernel(KernelPartials)
	if p.Ops != 5 || p.Calls != 2 {
		t.Fatalf("partials ops/calls = %d/%d, want 5/2", p.Ops, p.Calls)
	}
	if p.Total != 3*time.Millisecond {
		t.Fatalf("partials total = %v, want 3ms", p.Total)
	}
	if p.Min != 1*time.Millisecond || p.Max != 2*time.Millisecond {
		t.Fatalf("partials min/max = %v/%v, want 1ms/2ms", p.Min, p.Max)
	}
	if want := 3 * time.Millisecond / 5; p.MeanPerOp() != want {
		t.Fatalf("MeanPerOp = %v, want %v", p.MeanPerOp(), want)
	}
	if want := 3 * time.Millisecond / 2; p.MeanPerCall() != want {
		t.Fatalf("MeanPerCall = %v, want %v", p.MeanPerCall(), want)
	}
	r := snap.Kernel(KernelRoot)
	if r.Ops != 1 || r.Calls != 1 || r.Total != 500*time.Microsecond {
		t.Fatalf("root stats wrong: %+v", r)
	}
	// Kernels with no recorded calls are omitted entirely.
	for _, ks := range snap.Kernels {
		if ks.Kernel == KernelEdge {
			t.Fatal("edge kernel reported without any calls")
		}
	}
	if want := flops.PartialsOp(dims) * 5; snap.TotalFlops != want {
		t.Fatalf("TotalFlops = %v, want %v", snap.TotalFlops, want)
	}
	if want := flops.GFLOPS(snap.TotalFlops, p.Total); snap.EffectiveGFLOPS != want {
		t.Fatalf("EffectiveGFLOPS = %v, want %v", snap.EffectiveGFLOPS, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	durations := []time.Duration{
		1 * time.Nanosecond,
		100 * time.Nanosecond,
		10 * time.Microsecond,
		1 * time.Millisecond,
		1 * time.Millisecond,
	}
	for _, d := range durations {
		c.Record(KernelMatrices, 1, d)
	}
	h := c.Snapshot().Kernel(KernelMatrices).Histogram
	if len(h) != 4 {
		t.Fatalf("expected 4 non-empty buckets, got %d: %+v", len(h), h)
	}
	var total uint64
	last := time.Duration(-1)
	for _, b := range h {
		if b.UpperBound <= last {
			t.Fatalf("buckets not ascending: %+v", h)
		}
		last = b.UpperBound
		total += b.Count
	}
	if total != uint64(len(durations)) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(durations))
	}
	if h[len(h)-1].Count != 2 {
		t.Fatalf("1ms bucket count = %d, want 2", h[len(h)-1].Count)
	}
}

func TestNegativeDurationClampedToZero(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	c.Record(KernelRoot, 1, -time.Second)
	ks := c.Snapshot().Kernel(KernelRoot)
	if ks.Total != 0 || ks.Min != 0 || ks.Max != 0 {
		t.Fatalf("negative duration not clamped: %+v", ks)
	}
}

func TestTraceRingWrapKeepsNewestOldestFirst(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	const extra = 50
	for i := 0; i < TraceCapacity+extra; i++ {
		c.TraceLevel(uint64(i+1), i, 2, 4, time.Duration(i))
	}
	levels := c.Snapshot().Levels
	if len(levels) != TraceCapacity {
		t.Fatalf("ring retained %d traces, want %d", len(levels), TraceCapacity)
	}
	if levels[0].Batch != extra+1 {
		t.Fatalf("oldest retained batch = %d, want %d", levels[0].Batch, extra+1)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Batch != levels[i-1].Batch+1 {
			t.Fatalf("traces out of order at %d: %d then %d", i, levels[i-1].Batch, levels[i].Batch)
		}
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	c.SetLabels("impl", "strategy")
	c.NextBatch()
	c.Record(KernelPartials, 2, time.Millisecond)
	c.AddFlops(1e6)
	c.TraceLevel(1, 0, 2, 2, time.Millisecond)

	c.Reset()
	snap := c.Snapshot()
	if len(snap.Kernels) != 0 || snap.TotalFlops != 0 || snap.Batches != 0 || len(snap.Levels) != 0 {
		t.Fatalf("Reset left state behind: %+v", snap)
	}
	if snap.Implementation != "impl" || !snap.Enabled {
		t.Fatal("Reset must preserve labels and the enabled switch")
	}
	// The collector keeps working after a reset, min/max included.
	c.Record(KernelPartials, 1, 2*time.Millisecond)
	p := c.Snapshot().Kernel(KernelPartials)
	if p.Min != 2*time.Millisecond || p.Max != 2*time.Millisecond {
		t.Fatalf("post-reset min/max wrong: %+v", p)
	}
}

// TestConcurrentRecording hammers every mutating entry point from many
// goroutines (run under -race in CI) and checks the final counters are exact
// and snapshots taken mid-flight stay internally consistent.
func TestConcurrentRecording(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	const (
		goroutines = 8
		iters      = 500
		opsPerCall = 3
	)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter: invariants must hold at every instant.
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := c.Snapshot()
			p := snap.Kernel(KernelPartials)
			if p.Ops != opsPerCall*p.Calls {
				t.Errorf("snapshot ops %d != %d*calls %d", p.Ops, opsPerCall, p.Calls)
				return
			}
			if len(snap.Levels) > TraceCapacity {
				t.Errorf("snapshot retained %d levels", len(snap.Levels))
				return
			}
			var inHist uint64
			for _, b := range p.Histogram {
				inHist += b.Count
			}
			if inHist != p.Calls {
				t.Errorf("histogram holds %d samples, calls %d", inHist, p.Calls)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				batch := c.NextBatch()
				c.Record(KernelPartials, opsPerCall, time.Duration(i+1)*time.Microsecond)
				c.AddFlops(10)
				c.TraceLevel(batch, 0, opsPerCall, opsPerCall, time.Microsecond)
			}
		}()
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	snap := c.Snapshot()
	p := snap.Kernel(KernelPartials)
	if p.Calls != goroutines*iters {
		t.Fatalf("calls = %d, want %d", p.Calls, goroutines*iters)
	}
	if p.Ops != goroutines*iters*opsPerCall {
		t.Fatalf("ops = %d, want %d", p.Ops, goroutines*iters*opsPerCall)
	}
	if snap.Batches != goroutines*iters {
		t.Fatalf("batches = %d, want %d", snap.Batches, goroutines*iters)
	}
	if want := float64(goroutines * iters * 10); math.Abs(snap.TotalFlops-want) > 1e-6 {
		t.Fatalf("TotalFlops = %v, want %v", snap.TotalFlops, want)
	}
	if len(snap.Levels) != TraceCapacity {
		t.Fatalf("retained %d traces, want %d", len(snap.Levels), TraceCapacity)
	}
}

// TestDisabledPathAllocatesNothing pins the zero-allocation guarantee of the
// disabled fast path: the guard plus the no-op record must not allocate.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	c := New()
	var nilC *Collector
	for name, col := range map[string]*Collector{"disabled": c, "nil": nilC} {
		allocs := testing.AllocsPerRun(1000, func() {
			if col.Enabled() {
				col.Record(KernelPartials, 1, time.Microsecond)
			}
			col.Record(KernelRoot, 1, time.Microsecond)
			col.AddFlops(1)
			col.NextBatch()
		})
		if allocs != 0 {
			t.Errorf("%s path allocates %.1f per run, want 0", name, allocs)
		}
	}
}

func TestKernelStrings(t *testing.T) {
	want := []string{"partials", "root", "edge", "matrices", "derivatives", "rescale"}
	ks := Kernels()
	if len(ks) != len(want) {
		t.Fatalf("Kernels() returned %d families, want %d", len(ks), len(want))
	}
	for i, k := range ks {
		if k.String() != want[i] {
			t.Errorf("kernel %d String() = %q, want %q", i, k.String(), want[i])
		}
	}
	if Kernel(99).String() != "unknown" {
		t.Error("out-of-range kernel should stringify as unknown")
	}
}

func BenchmarkDisabledGuard(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Enabled() {
			c.Record(KernelPartials, 1, time.Microsecond)
		}
	}
}

func BenchmarkEnabledRecord(b *testing.B) {
	c := New()
	c.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Record(KernelPartials, 4, time.Microsecond)
	}
}

// TestEnabledHotPathAllocatesNothing extends the zero-allocation guarantee
// to the enabled path: counters and histograms are plain atomics, so turning
// telemetry on must add time, never garbage.
func TestEnabledHotPathAllocatesNothing(t *testing.T) {
	c := New()
	c.SetEnabled(true)
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Enabled() {
			c.Record(KernelPartials, 4, time.Microsecond)
			c.AddFlops(128)
		}
		c.NextBatch()
	})
	if allocs != 0 {
		t.Errorf("enabled path allocates %.1f per run, want 0", allocs)
	}
}
