// Package telemetry is the library's runtime observability layer: the
// instrumentation counterpart of the paper's evaluation methodology (§V-A),
// which rests on measuring the core partial-likelihoods function and
// reporting throughput in effective GFLOPS.
//
// A Collector is attached to one engine instance and accumulates, entirely
// through atomic operations (no locks on any hot path):
//
//   - per-kernel operation counters and duration histograms (log₂ buckets),
//     keyed by the Kernel families the implementations instrument;
//   - an effective-floating-point-operation accumulator, fed from
//     internal/flops, from which snapshot-time effective GFLOPS are derived
//     exactly as genomictest and beaglebench report them;
//   - a ring-buffer batch tracer recording each scheduler dependency level
//     (batch id, level index, operation count, dispatched task count, wall
//     time) for the leveled CPU strategies (futures, thread-pool-hybrid).
//
// The disabled fast path is a single atomic load and branch per batch:
// implementations guard all timing with Enabled(), so instrumentation that
// is compiled in but switched off allocates nothing and stays within the
// <2% overhead budget on the kernel micro-benchmarks. All methods are safe
// on a nil *Collector, which behaves as permanently disabled.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Kernel identifies an instrumented kernel family, the granularity at which
// counters and histograms are kept.
type Kernel int

// Instrumented kernel families, in presentation order.
const (
	// KernelPartials is the partial-likelihoods update batch, the function
	// the paper's entire evaluation measures.
	KernelPartials Kernel = iota
	// KernelRoot is the root-likelihood integration (site likelihoods plus
	// the pattern reduction).
	KernelRoot
	// KernelEdge is the single-branch edge likelihood and edge derivative
	// integration.
	KernelEdge
	// KernelMatrices is transition-matrix computation from an
	// eigendecomposition.
	KernelMatrices
	// KernelDerivatives is derivative transition-matrix computation.
	KernelDerivatives
	// KernelRescale is partials rescaling into scale buffers (accelerator
	// implementations launch it as a distinct kernel; CPU implementations
	// fold it into the partials operation).
	KernelRescale
	numKernels
)

// String returns the kernel family name used in reports.
func (k Kernel) String() string {
	switch k {
	case KernelPartials:
		return "partials"
	case KernelRoot:
		return "root"
	case KernelEdge:
		return "edge"
	case KernelMatrices:
		return "matrices"
	case KernelDerivatives:
		return "derivatives"
	case KernelRescale:
		return "rescale"
	default:
		return "unknown"
	}
}

// Kernels lists every instrumented kernel family in presentation order.
func Kernels() []Kernel {
	out := make([]Kernel, numKernels)
	for i := range out {
		out[i] = Kernel(i)
	}
	return out
}

// histBuckets is the number of log₂ duration buckets. Bucket b counts calls
// whose duration in nanoseconds has bit length b (i.e. lies in
// [2^(b-1), 2^b)); the last bucket absorbs everything longer (≈2s and up).
const histBuckets = 32

// kernelMetric is the atomic accumulator for one kernel family.
type kernelMetric struct {
	ops     atomic.Uint64 // logical operations (e.g. partials ops in a batch)
	calls   atomic.Uint64 // timed invocations (histogram samples)
	totalNS atomic.Int64
	minNS   atomic.Int64 // math.MaxInt64 while unset
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

//beagle:noalloc
func (m *kernelMetric) record(ops int, d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	m.ops.Add(uint64(ops))
	m.calls.Add(1)
	m.totalNS.Add(ns)
	for {
		cur := m.minNS.Load()
		if ns >= cur || m.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := m.maxNS.Load()
		if ns <= cur || m.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	m.buckets[b].Add(1)
}

func (m *kernelMetric) reset() {
	m.ops.Store(0)
	m.calls.Store(0)
	m.totalNS.Store(0)
	m.minNS.Store(math.MaxInt64)
	m.maxNS.Store(0)
	for i := range m.buckets {
		m.buckets[i].Store(0)
	}
}

// labels carries the identification strings, stored behind one atomic
// pointer so SetLabels is safe against concurrent snapshots.
type labels struct {
	impl     string
	strategy string
}

// Collector accumulates the metrics of one engine instance. The zero value
// is not usable; construct with New. A nil *Collector is valid everywhere
// and permanently disabled.
type Collector struct {
	enabled atomic.Bool
	labels  atomic.Pointer[labels]
	kernels [numKernels]kernelMetric
	// flopsBits accumulates effective floating-point operations as the bit
	// pattern of a float64, updated by compare-and-swap.
	flopsBits atomic.Uint64
	batches   atomic.Uint64
	trace     traceRing
}

// New creates an empty, disabled collector.
func New() *Collector {
	c := &Collector{}
	for i := range c.kernels {
		c.kernels[i].minNS.Store(math.MaxInt64)
	}
	c.labels.Store(&labels{})
	return c
}

// SetLabels records the implementation and strategy names reported in
// snapshots (e.g. "CPU-threadpool-hybrid", "thread-pool-hybrid").
func (c *Collector) SetLabels(impl, strategy string) {
	if c == nil {
		return
	}
	c.labels.Store(&labels{impl: impl, strategy: strategy})
}

// SetEnabled switches collection on or off. Implementations must treat a
// false value as "record nothing and take no timestamps".
func (c *Collector) SetEnabled(on bool) {
	if c == nil {
		return
	}
	c.enabled.Store(on)
}

// Enabled reports whether the collector is recording. This is the guard on
// every instrumented hot path: one atomic load, no allocation.
//
//beagle:noalloc
func (c *Collector) Enabled() bool {
	return c != nil && c.enabled.Load()
}

// NextBatch returns a fresh 1-based batch identifier for level tracing.
//
//beagle:noalloc
func (c *Collector) NextBatch() uint64 {
	if c == nil {
		return 0
	}
	return c.batches.Add(1)
}

// Record adds one timed invocation covering `ops` logical operations to a
// kernel family's counters and histogram.
//
//beagle:noalloc
func (c *Collector) Record(k Kernel, ops int, d time.Duration) {
	if c == nil || !c.enabled.Load() || k < 0 || k >= numKernels {
		return
	}
	c.kernels[k].record(ops, d)
}

// AddFlops accumulates effective floating-point operations (from
// internal/flops) into the throughput accounting.
//
//beagle:noalloc
func (c *Collector) AddFlops(f float64) {
	if c == nil || !c.enabled.Load() || !(f > 0) {
		return
	}
	for {
		old := c.flopsBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if c.flopsBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// TraceLevel records one scheduler dependency level into the ring buffer:
// ops operations dispatched as tasks total concurrent tasks, completing in
// wall time.
func (c *Collector) TraceLevel(batch uint64, level, ops, tasks int, wall time.Duration) {
	if c == nil || !c.enabled.Load() {
		return
	}
	c.trace.add(&LevelTrace{Batch: batch, Level: level, Ops: ops, Tasks: tasks, Wall: wall})
}

// Reset clears every counter, histogram, the flop accumulator and the trace
// ring; labels and the enabled switch are preserved.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.kernels {
		c.kernels[i].reset()
	}
	c.flopsBits.Store(0)
	c.batches.Store(0)
	c.trace.reset()
}
