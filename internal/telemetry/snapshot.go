package telemetry

import (
	"math"
	"time"

	"gobeagle/internal/flops"
)

// KernelStats is the snapshot of one kernel family's counters.
type KernelStats struct {
	Kernel Kernel
	// Ops counts logical operations (e.g. individual partials operations,
	// across all batches); Calls counts timed invocations (histogram
	// samples — one per batch for batched kernels).
	Ops   uint64
	Calls uint64
	// Total/Min/Max aggregate the per-call wall times.
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
	// Histogram holds the non-empty log₂ duration buckets, ascending.
	Histogram []HistogramBucket
}

// MeanPerOp is the average wall time attributed to one logical operation.
func (s KernelStats) MeanPerOp() time.Duration {
	if s.Ops == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Ops)
}

// MeanPerCall is the average wall time of one timed invocation.
func (s KernelStats) MeanPerCall() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// HistogramBucket is one non-empty log₂ duration bucket: Count calls took
// at most UpperBound (and more than the previous bucket's UpperBound).
type HistogramBucket struct {
	UpperBound time.Duration
	Count      uint64
}

// Snapshot is a consistent-enough point-in-time view of a collector:
// each counter is read atomically, so totals from concurrent recording may
// disagree transiently by in-flight operations but never corrupt.
type Snapshot struct {
	Implementation string
	Strategy       string
	Enabled        bool
	// TotalFlops is the accumulated effective floating-point operation
	// count of the partials updates (the paper's §V-A measure).
	TotalFlops float64
	// EffectiveGFLOPS relates TotalFlops to the partials kernel's total
	// wall time — the throughput genomictest and beaglebench report.
	EffectiveGFLOPS float64
	// Batches counts UpdatePartials invocations since the last reset.
	Batches uint64
	// Kernels holds stats for every kernel family with recorded calls.
	Kernels []KernelStats
	// Levels are the retained scheduler dependency-level traces, oldest
	// first (leveled CPU strategies only).
	Levels []LevelTrace
}

// Kernel returns the stats for one kernel family, or a zero value.
func (s Snapshot) Kernel(k Kernel) KernelStats {
	for _, ks := range s.Kernels {
		if ks.Kernel == k {
			return ks
		}
	}
	return KernelStats{Kernel: k}
}

// Snapshot captures the collector's current state. Safe to call
// concurrently with recording; a nil collector yields a zero snapshot.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	lb := c.labels.Load()
	snap := Snapshot{
		Implementation: lb.impl,
		Strategy:       lb.strategy,
		Enabled:        c.enabled.Load(),
		TotalFlops:     math.Float64frombits(c.flopsBits.Load()),
		Batches:        c.batches.Load(),
		Levels:         c.trace.snapshot(),
	}
	for k := 0; k < int(numKernels); k++ {
		m := &c.kernels[k]
		calls := m.calls.Load()
		if calls == 0 {
			continue
		}
		ks := KernelStats{
			Kernel: Kernel(k),
			Ops:    m.ops.Load(),
			Calls:  calls,
			Total:  time.Duration(m.totalNS.Load()),
			Max:    time.Duration(m.maxNS.Load()),
		}
		if min := m.minNS.Load(); min != math.MaxInt64 {
			ks.Min = time.Duration(min)
		}
		for b := 0; b < histBuckets; b++ {
			if n := m.buckets[b].Load(); n > 0 {
				upper := time.Duration(math.MaxInt64)
				if b < histBuckets-1 {
					upper = time.Duration(int64(1)<<b - 1)
				}
				ks.Histogram = append(ks.Histogram, HistogramBucket{UpperBound: upper, Count: n})
			}
		}
		snap.Kernels = append(snap.Kernels, ks)
	}
	if p := snap.Kernel(KernelPartials); p.Total > 0 {
		snap.EffectiveGFLOPS = flops.GFLOPS(snap.TotalFlops, p.Total)
	}
	return snap
}
