package loadgen

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBudgetAndCodes(t *testing.T) {
	var calls atomic.Int64
	rep := Run(context.Background(), Options{Concurrency: 4, Requests: 100}, func(ctx context.Context, w, seq int) Result {
		n := calls.Add(1)
		if n%10 == 0 {
			return Result{Code: 429, Latency: time.Millisecond}
		}
		if n%25 == 0 {
			return Result{Err: fmt.Errorf("boom")}
		}
		return Result{Code: 200, Latency: time.Millisecond}
	})
	if got := rep.Requests + rep.Errors; got != 100 {
		t.Fatalf("measured %d results, want 100", got)
	}
	if rep.Errors == 0 || rep.Codes[429] == 0 || rep.Codes[200] == 0 {
		t.Fatalf("mix not preserved: %+v", rep)
	}
	if rep.RPS <= 0 {
		t.Fatalf("RPS = %v", rep.RPS)
	}
}

func TestPercentiles(t *testing.T) {
	// Latencies 1..100ms, uniform: p50 = 50ms, p99 = 99ms by nearest rank.
	i := atomic.Int64{}
	rep := Run(context.Background(), Options{Concurrency: 1, Requests: 100}, func(ctx context.Context, w, seq int) Result {
		return Result{Code: 200, Latency: time.Duration(i.Add(1)) * time.Millisecond}
	})
	if rep.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", rep.P50)
	}
	if rep.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", rep.P95)
	}
	if rep.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", rep.P99)
	}
	if rep.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", rep.Max)
	}
}

func TestWarmupDiscarded(t *testing.T) {
	var calls atomic.Int64
	rep := Run(context.Background(), Options{Concurrency: 2, Requests: 10, WarmupRequests: 5}, func(ctx context.Context, w, seq int) Result {
		calls.Add(1)
		return Result{Code: 200, Latency: time.Microsecond}
	})
	if calls.Load() != 15 {
		t.Fatalf("target saw %d calls, want 15 (5 warmup + 10 measured)", calls.Load())
	}
	if rep.Requests != 10 {
		t.Fatalf("measured %d, want 10", rep.Requests)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	go func() {
		for calls.Load() < 5 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	rep := Run(ctx, Options{Concurrency: 2, Requests: 1_000_000}, func(ctx context.Context, w, seq int) Result {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return Result{Code: 200}
	})
	if rep.Requests >= 1_000_000 {
		t.Fatalf("cancellation did not stop the run")
	}
}
