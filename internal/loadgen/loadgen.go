// Package loadgen is a closed-loop load generator for the serving layer: N
// concurrent workers each issue requests back-to-back against a target
// function (an HTTP client or an in-process Server), and the run reports
// throughput and the latency distribution (p50/p95/p99). It is used by the
// serve benchmark experiment and by cmd/beagleload, and deliberately knows
// nothing about HTTP or phylogenetics — callers inject the request function.
package loadgen

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Result classifies one completed request.
type Result struct {
	// Latency is the request's wall time.
	Latency time.Duration
	// Code is the caller-defined status (HTTP status for wire clients);
	// 0 is treated as success by convention.
	Code int
	// Err is non-nil when the request failed before producing a status.
	Err error
}

// RequestFunc issues one request. worker and seq identify the issuing worker
// and its per-worker sequence number, letting callers vary request content
// deterministically across the run.
type RequestFunc func(ctx context.Context, worker, seq int) Result

// Options configures a run.
type Options struct {
	// Concurrency is the number of workers: the closed-loop clients, or the
	// in-flight cap under open-loop load.
	Concurrency int
	// Requests is the total request budget across all workers; the run ends
	// when it is exhausted (or the context is cancelled).
	Requests int
	// WarmupRequests are issued and discarded before measurement begins,
	// letting the target's pool warm up and the JIT-ish layers settle.
	WarmupRequests int
	// RatePerSec switches the measured phase to open-loop load: requests are
	// assigned intended arrival times at this aggregate rate, and latency is
	// measured from the intended arrival to completion (coordinated-omission
	// corrected, as in wrk2) — so a target that falls behind is charged its
	// backlog instead of silently throttling the generator. 0 keeps the
	// closed loop, where latency is pure service time.
	RatePerSec float64
	// Poisson draws exponential inter-arrival gaps instead of a uniform
	// spacing (open-loop only), stressing the target with realistic bursts.
	Poisson bool
	// Seed makes the Poisson arrival process deterministic.
	Seed int64
}

// Report summarizes a run.
type Report struct {
	// Requests is the number of measured requests completed.
	Requests int `json:"requests"`
	// Errors counts requests whose Err was non-nil.
	Errors int `json:"errors"`
	// Codes histograms the non-error status codes.
	Codes map[int]int `json:"codes,omitempty"`
	// Elapsed is the measured-phase wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// RPS is Requests / Elapsed.
	RPS float64 `json:"rps"`
	// P50, P95 and P99 are latency percentiles over measured requests;
	// Mean and Max complete the picture.
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`
	Max  time.Duration `json:"max_ns"`
}

// Run drives the target with a closed loop per worker until the request
// budget is spent. Workers share the budget through a channel, so stragglers
// do not skew the request mix.
func Run(ctx context.Context, opts Options, fn RequestFunc) Report {
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.Requests < 1 {
		opts.Requests = 1
	}

	// Warmup: spread across workers, results discarded.
	if opts.WarmupRequests > 0 {
		runPhase(ctx, opts.Concurrency, opts.WarmupRequests, fn, nil)
	}

	latencies := make([]time.Duration, 0, opts.Requests)
	rep := Report{Codes: map[int]int{}}
	var mu sync.Mutex
	record := func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Err != nil {
			rep.Errors++
			return
		}
		rep.Codes[r.Code]++
		latencies = append(latencies, r.Latency)
	}

	start := time.Now()
	if opts.RatePerSec > 0 {
		runOpenLoop(ctx, opts, fn, record)
	} else {
		runPhase(ctx, opts.Concurrency, opts.Requests, fn, record)
	}
	rep.Elapsed = time.Since(start)

	rep.Requests = len(latencies)
	if rep.Elapsed > 0 {
		rep.RPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	if len(latencies) == 0 {
		return rep
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P95 = percentile(latencies, 0.95)
	rep.P99 = percentile(latencies, 0.99)
	rep.Max = latencies[len(latencies)-1]
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	rep.Mean = sum / time.Duration(len(latencies))
	return rep
}

// runPhase issues budget requests across workers; record may be nil (warmup).
func runPhase(ctx context.Context, workers, budget int, fn RequestFunc, record func(Result)) {
	tickets := make(chan int, budget)
	for i := 0; i < budget; i++ {
		tickets <- i
	}
	close(tickets)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := 0
			for range tickets {
				if ctx.Err() != nil {
					return
				}
				start := time.Now()
				r := fn(ctx, w, seq)
				if r.Latency == 0 {
					r.Latency = time.Since(start)
				}
				if record != nil {
					record(r)
				}
				seq++
			}
		}(w)
	}
	wg.Wait()
}

// runOpenLoop issues requests at intended arrival times computed up front
// from the configured rate. Workers pull the next intended time, sleep until
// it if they are early, and measure latency from the intended arrival — a
// worker running late (all workers busy: the target is backlogged) charges
// the delay to the request rather than quietly stretching the schedule.
func runOpenLoop(ctx context.Context, opts Options, fn RequestFunc, record func(Result)) {
	rng := rand.New(rand.NewSource(opts.Seed))
	interval := float64(time.Second) / opts.RatePerSec
	arrivals := make(chan time.Time, opts.Requests)
	t := time.Now()
	for i := 0; i < opts.Requests; i++ {
		gap := interval
		if opts.Poisson {
			gap = rng.ExpFloat64() * interval
		}
		t = t.Add(time.Duration(gap))
		arrivals <- t
	}
	close(arrivals)

	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := 0
			for intended := range arrivals {
				if ctx.Err() != nil {
					return
				}
				if wait := time.Until(intended); wait > 0 {
					time.Sleep(wait)
				}
				r := fn(ctx, w, seq)
				r.Latency = time.Since(intended)
				if record != nil {
					record(r)
				}
				seq++
			}
		}(w)
	}
	wg.Wait()
}

// percentile returns the value at quantile q over sorted latencies using the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
