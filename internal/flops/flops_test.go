package flops

import (
	"testing"
	"time"

	"gobeagle/internal/kernels"
)

func TestPerPartialsEntry(t *testing.T) {
	if got := PerPartialsEntry(4); got != 17 {
		t.Fatalf("PerPartialsEntry(4) = %v, want 17", got)
	}
	if got := PerPartialsEntry(61); got != 245 {
		t.Fatalf("PerPartialsEntry(61) = %v, want 245", got)
	}
}

func TestPartialsOpAndTotal(t *testing.T) {
	d := kernels.Dims{StateCount: 4, PatternCount: 100, CategoryCount: 2}
	want := 2.0 * 100 * 4 * 17
	if got := PartialsOp(d); got != want {
		t.Fatalf("PartialsOp = %v, want %v", got, want)
	}
	if got := Total(d, 5); got != 5*want {
		t.Fatalf("Total = %v, want %v", got, 5*want)
	}
}

func TestGFLOPS(t *testing.T) {
	if got := GFLOPS(2e9, time.Second); got != 2 {
		t.Fatalf("GFLOPS = %v, want 2", got)
	}
	if got := GFLOPS(1e9, 500*time.Millisecond); got != 2 {
		t.Fatalf("GFLOPS = %v, want 2", got)
	}
	if got := GFLOPS(1e9, 0); got != 0 {
		t.Fatalf("GFLOPS with zero time = %v, want 0", got)
	}
}
