// Package flops implements the paper's throughput measure: the effective
// number of floating-point operations performed by the partial-likelihoods
// function (§V-A). Throughput in GFLOPS, rather than raw timing, lets runs
// with different problem sizes and precisions be compared directly and
// related to hardware peak rates.
package flops

import (
	"time"

	"gobeagle/internal/kernels"
)

// PerPartialsEntry returns the effective floating-point operations needed
// for one destination partials entry: two dot products over the state space
// (a multiply and an add per state each) plus the final cross product.
func PerPartialsEntry(stateCount int) float64 {
	return float64(4*stateCount + 1)
}

// PartialsOp returns the effective floating-point operations of one full
// partial-likelihoods operation (all categories, patterns and states).
func PartialsOp(d kernels.Dims) float64 {
	entries := float64(d.CategoryCount) * float64(d.PatternCount) * float64(d.StateCount)
	return entries * PerPartialsEntry(d.StateCount)
}

// Total returns the effective operations of opCount partial-likelihoods
// operations.
func Total(d kernels.Dims, opCount int) float64 {
	return PartialsOp(d) * float64(opCount)
}

// GFLOPS converts an operation count and elapsed time to throughput in
// billions of effective floating-point operations per second.
func GFLOPS(totalFlops float64, elapsed time.Duration) float64 {
	s := elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return totalFlops / s / 1e9
}
