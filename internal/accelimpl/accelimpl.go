// Package accelimpl is the accelerator model of the library (Fig. 3): one
// implementation base that drives the shared kernel set through the single
// internal hardware interface of internal/device, with an implementation
// available for each framework (CUDA and OpenCL) and hardware-specific
// kernel variants:
//
//   - CUDA and OpenCL-GPU use the GPU-style kernels — one work-item per
//     partials entry (Fig. 2) — with work-group pattern counts limited by
//     the device's local memory (§VII-B1) and FMA kernel builds on hardware
//     that advertises fast fused multiply–add;
//   - OpenCL-x86 uses the loop-over-states kernels where each work-item
//     computes a whole pattern, avoids explicit local memory, and takes a
//     configurable work-group size in patterns (§VII-B2, Table V).
//
// All data lives in device buffers; transition-matrix computation, partials
// updates, rescaling and site-likelihood integration all run as device
// kernels so that only scalar results cross the host↔device boundary, as the
// paper's design requires (§IV-F).
package accelimpl

import (
	"errors"
	"fmt"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/reuse"
)

// Variant selects the hardware-specific kernel configuration.
type Variant int

// Accelerator implementation variants.
const (
	CUDA Variant = iota
	OpenCLGPU
	OpenCLX86
)

// String returns the implementation name used in resource listings.
func (v Variant) String() string {
	switch v {
	case CUDA:
		return "CUDA"
	case OpenCLGPU:
		return "OpenCL-GPU"
	case OpenCLX86:
		return "OpenCL-x86"
	default:
		return fmt.Sprintf("Accel-unknown(%d)", int(v))
	}
}

// Efficiency penalties applied to the device's peak rate when kernels are
// built without FMA on FMA-capable hardware, calibrated to Table IV's
// observed gains (≈1.8% single, ≈10–12% double precision).
const (
	noFMAEfficiencySingle = 0.982
	noFMAEfficiencyDouble = 0.90
)

// defaultGPUPatternsPerGroup is the GPU work-group size in patterns before
// the local-memory limit is applied (64 patterns × 4 states = 256 work-items
// per group for nucleotide models, a typical GPU block size).
const defaultGPUPatternsPerGroup = 64

// defaultX86PatternsPerGroup is the x86 work-group size in patterns; the
// paper selects 256 as the smallest size with peak throughput (Table V).
const defaultX86PatternsPerGroup = 256

// New creates an accelerator engine of the given variant on the given
// device, instantiated for the precision in the configuration.
func New(cfg engine.Config, variant Variant, dev *device.Device) (engine.Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("accelimpl: nil device")
	}
	switch variant {
	case CUDA:
		if dev.Framework != device.CUDA {
			return nil, fmt.Errorf("accelimpl: CUDA variant requires a CUDA device, got %s %s", dev.Framework, dev.Desc.Name)
		}
	case OpenCLGPU, OpenCLX86:
		if dev.Framework != device.OpenCL {
			return nil, fmt.Errorf("accelimpl: %s variant requires an OpenCL device, got %s %s", variant, dev.Framework, dev.Desc.Name)
		}
	default:
		return nil, fmt.Errorf("accelimpl: unknown variant %d", int(variant))
	}
	if cfg.SinglePrecision {
		return newEngine[float32](cfg, variant, dev)
	}
	return newEngine[float64](cfg, variant, dev)
}

// Engine is an accelerator implementation of engine.Engine.
type Engine[T kernels.Real] struct {
	cfg     engine.Config
	variant Variant
	dev     *device.Device
	q       *device.Queue

	partials   []*device.Buffer[T]
	tipStates  []*device.Buffer[int32]
	matrixPool *device.Buffer[T]
	matrices   []*device.Buffer[T] // sub-buffer views into matrixPool
	matSet     []bool
	scale      []*device.Buffer[float64]
	siteBuf    *device.Buffer[float64]

	eigens   []*kernels.Eigen
	catRates []float64
	catWts   []float64
	freqs    []float64
	patWts   []float64

	useFMA     bool
	groupPats  int // patterns per work-group after local-memory limits
	efficiency float64
	closed     bool

	// reuse is the incremental re-evaluation tracker (nil unless
	// cfg.Reuse); scratch holds the filtered operation list between
	// batches so the skip path allocates nothing once warmed up.
	reuse   *reuse.Tracker
	scratch []engine.Operation
}

func newEngine[T kernels.Real](cfg engine.Config, variant Variant, dev *device.Device) (*Engine[T], error) {
	e := &Engine[T]{
		cfg:      cfg,
		variant:  variant,
		dev:      dev,
		q:        dev.NewQueue(cfg.SinglePrecision),
		eigens:   make([]*kernels.Eigen, cfg.EigenBuffers),
		catRates: make([]float64, cfg.Dims.CategoryCount),
		catWts:   make([]float64, cfg.Dims.CategoryCount),
		freqs:    make([]float64, cfg.Dims.StateCount),
		patWts:   make([]float64, cfg.Dims.PatternCount),
	}
	for i := range e.catRates {
		e.catRates[i] = 1
		e.catWts[i] = 1 / float64(cfg.Dims.CategoryCount)
	}
	for i := range e.freqs {
		e.freqs[i] = 1 / float64(cfg.Dims.StateCount)
	}
	for i := range e.patWts {
		e.patWts[i] = 1
	}
	if cfg.Reuse {
		e.reuse = reuse.New(cfg.PartialsBuffers, cfg.MatrixBuffers, cfg.ScaleBuffers)
	}
	e.q.SetTracer(cfg.Trace, int32(cfg.TraceLane))

	e.useFMA = dev.Desc.SupportsFMA && !cfg.DisableFMA
	e.efficiency = 1
	if dev.Desc.SupportsFMA && !e.useFMA {
		if cfg.SinglePrecision {
			e.efficiency = noFMAEfficiencySingle
		} else {
			e.efficiency = noFMAEfficiencyDouble
		}
	}

	// Work-group geometry. GPU variants stage both children's partials in
	// local memory, so the device's local-memory size bounds the patterns
	// per group (§VII-B1); the x86 variant lets the compiler manage caching
	// and uses large pattern groups (§VII-B2).
	req := cfg.WorkGroupSize
	if req <= 0 {
		if variant == OpenCLX86 {
			req = defaultX86PatternsPerGroup
		} else {
			req = defaultGPUPatternsPerGroup
		}
	}
	if variant == OpenCLX86 {
		e.groupPats = req
	} else {
		e.groupPats = dev.Desc.MaxPatternsPerGroup(req, cfg.Dims.StateCount, cfg.SinglePrecision)
	}

	// Device allocations.
	d := cfg.Dims
	e.partials = make([]*device.Buffer[T], cfg.PartialsBuffers)
	e.tipStates = make([]*device.Buffer[int32], cfg.TipCount)
	e.scale = make([]*device.Buffer[float64], cfg.ScaleBuffers)
	var err error
	e.siteBuf, err = device.Alloc[float64](dev, d.PatternCount)
	if err != nil {
		return nil, err
	}
	// Transition matrices are pooled into one allocation with an aligned
	// stride per matrix, addressed through framework-appropriate
	// sub-buffers (§VII-A): pointer arithmetic under CUDA,
	// clCreateSubBuffer under OpenCL.
	stride := e.alignedStride(d.MatrixLen())
	e.matrixPool, err = device.Alloc[T](dev, stride*cfg.MatrixBuffers)
	if err != nil {
		e.freeAll()
		return nil, err
	}
	e.matrices = make([]*device.Buffer[T], cfg.MatrixBuffers)
	e.matSet = make([]bool, cfg.MatrixBuffers)
	for i := range e.matrices {
		var sub *device.Buffer[T]
		if dev.Framework == device.CUDA {
			sub, err = e.matrixPool.SubCUDA(i*stride, d.MatrixLen())
		} else {
			sub, err = e.matrixPool.SubOpenCL(i*stride, d.MatrixLen())
		}
		if err != nil {
			e.freeAll()
			return nil, err
		}
		e.matrices[i] = sub
	}
	return e, nil
}

// alignedStride rounds a matrix length up so every sub-buffer origin
// satisfies the device's base alignment.
func (e *Engine[T]) alignedStride(n int) int {
	var zero T
	elem := 8
	if _, ok := any(zero).(float32); ok {
		elem = 4
	}
	align := e.dev.Desc.BaseAlign
	if align <= elem {
		return n
	}
	per := align / elem
	return (n + per - 1) / per * per
}

// Name identifies the implementation and its device.
func (e *Engine[T]) Name() string {
	return fmt.Sprintf("%s: %s", e.variant, e.dev.Desc.Name)
}

// Queue exposes the engine's command queue for benchmark instrumentation.
func (e *Engine[T]) Queue() *device.Queue { return e.q }

// GroupPatterns returns the effective work-group size in patterns after
// device limits, for tests and benchmark reporting.
func (e *Engine[T]) GroupPatterns() int { return e.groupPats }

func (e *Engine[T]) freeAll() {
	for _, b := range e.partials {
		if b != nil {
			b.Free()
		}
	}
	for _, b := range e.tipStates {
		if b != nil {
			b.Free()
		}
	}
	for _, b := range e.scale {
		if b != nil {
			b.Free()
		}
	}
	if e.siteBuf != nil {
		e.siteBuf.Free()
	}
	if e.matrixPool != nil {
		e.matrixPool.Free()
	}
}

// Close releases all device memory.
func (e *Engine[T]) Close() error {
	if e.closed {
		return errors.New("accelimpl: engine already closed")
	}
	e.closed = true
	e.freeAll()
	return nil
}

func (e *Engine[T]) checkPartialsIndex(buf int) error {
	if buf < 0 || buf >= len(e.partials) {
		return fmt.Errorf("accelimpl: partials buffer %d out of range [0,%d)", buf, len(e.partials))
	}
	return nil
}

func (e *Engine[T]) checkMatrixIndex(m int) error {
	if m < 0 || m >= len(e.matrices) {
		return fmt.Errorf("accelimpl: matrix buffer %d out of range [0,%d)", m, len(e.matrices))
	}
	return nil
}

func (e *Engine[T]) checkScaleIndex(b int) error {
	if b < 0 || b >= len(e.scale) {
		return fmt.Errorf("accelimpl: scale buffer %d out of range [0,%d)", b, len(e.scale))
	}
	return nil
}

func (e *Engine[T]) ensurePartials(buf int) (*device.Buffer[T], error) {
	if err := e.checkPartialsIndex(buf); err != nil {
		return nil, err
	}
	if e.partials[buf] == nil {
		b, err := device.Alloc[T](e.dev, e.cfg.Dims.PartialsLen())
		if err != nil {
			return nil, err
		}
		e.partials[buf] = b
	}
	return e.partials[buf], nil
}

func (e *Engine[T]) ensureScale(buf int) (*device.Buffer[float64], error) {
	if err := e.checkScaleIndex(buf); err != nil {
		return nil, err
	}
	if e.scale[buf] == nil {
		b, err := device.Alloc[float64](e.dev, e.cfg.Dims.PatternCount)
		if err != nil {
			return nil, err
		}
		e.scale[buf] = b
	}
	return e.scale[buf], nil
}
