package accelimpl

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// driveEngine loads a problem and returns the root log likelihood (shared
// shape with the cpuimpl tests; duplicated to keep packages independent).
func driveEngine(t *testing.T, e engine.Engine, tr *tree.Tree, m *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet, compactTips, scaled bool) float64 {
	t.Helper()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(rates.Rates),
		e.SetCategoryWeights(rates.Weights),
		e.SetStateFrequencies(m.Frequencies),
		e.SetPatternWeights(ps.Weights),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if compactTips {
			if err := e.SetTipStates(i, ps.TipStates(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.SetTipPartials(i, ps.TipPartials(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i] = mu.Matrix
		lens[i] = mu.Length
	}
	if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]engine.Operation, len(sched.Ops))
	scaleBufs := make([]int, 0, len(sched.Ops))
	for i, op := range sched.Ops {
		sw := engine.None
		if scaled {
			sw = i
			scaleBufs = append(scaleBufs, i)
		}
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: sw, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	if err := e.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	cum := engine.None
	if scaled {
		cum = len(sched.Ops)
		if err := e.ResetScaleFactors(cum); err != nil {
			t.Fatal(err)
		}
		if err := e.AccumulateScaleFactors(scaleBufs, cum); err != nil {
			t.Fatal(err)
		}
	}
	lnL, err := e.CalculateRootLogLikelihoods(sched.Root, cum)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

func testConfig(tr *tree.Tree, stateCount, patterns, cats int, single bool) engine.Config {
	return engine.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		Dims: kernels.Dims{
			StateCount:    stateCount,
			PatternCount:  patterns,
			CategoryCount: cats,
		},
		SinglePrecision: single,
	}
}

type variantCase struct {
	name    string
	variant Variant
	devName string
	fw      device.FrameworkName
}

var variantCases = []variantCase{
	{"CUDA on Quadro P5000", CUDA, "Quadro P5000", device.CUDA},
	{"OpenCL-GPU on Quadro P5000", OpenCLGPU, "Quadro P5000", device.OpenCL},
	{"OpenCL-GPU on Radeon R9 Nano", OpenCLGPU, "Radeon R9 Nano", device.OpenCL},
	{"OpenCL-GPU on FirePro S9170", OpenCLGPU, "FirePro S9170", device.OpenCL},
	{"OpenCL-x86 on Xeon E5-2680v4 x2", OpenCLX86, "Xeon E5-2680v4 x2", device.OpenCL},
	{"OpenCL-x86 on Xeon Phi 7210", OpenCLX86, "Xeon Phi 7210", device.OpenCL},
}

func newCase(t *testing.T, vc variantCase, cfg engine.Config) engine.Engine {
	t.Helper()
	dev, err := device.FindDevice(vc.fw, vc.devName)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg, vc.variant, dev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// referenceLnL computes the problem on the trusted CPU serial engine.
func referenceLnL(t *testing.T, tr *tree.Tree, m *substmodel.Model, rates *substmodel.SiteRates,
	ps *seqgen.PatternSet, compact bool, stateCount, cats int) float64 {
	t.Helper()
	cpu, err := cpuimpl.New(testConfig(tr, stateCount, ps.PatternCount(), cats, false), cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer cpu.Close()
	return driveEngine(t, cpu, tr, m, rates, ps, compact, false)
}

func TestAllVariantsMatchCPUSerialNucleotide(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(42))
	tr, _ := tree.Random(rng, 10, 0.15)
	m, _ := substmodel.NewHKY85(2.5, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.5, 4)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 400)
	ps := seqgen.CompressPatterns(align)
	want := referenceLnL(t, tr, m, rates, ps, true, 4, 4)

	for _, vc := range variantCases {
		e := newCase(t, vc, testConfig(tr, 4, ps.PatternCount(), 4, false))
		got := driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("%s: lnL %v want %v", vc.name, got, want)
		}
	}
}

func TestAllVariantsMatchCPUSerialCodon(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(7))
	tr, _ := tree.Random(rng, 6, 0.1)
	m, _ := substmodel.NewGY94(2, 0.3, nil)
	rates := substmodel.SingleRate()
	ps, _ := seqgen.RandomPatterns(rng, tr.TipCount, 61, 50)
	want := referenceLnL(t, tr, m, rates, ps, true, 61, 1)

	for _, vc := range variantCases {
		e := newCase(t, vc, testConfig(tr, 61, ps.PatternCount(), 1, false))
		got := driveEngine(t, e, tr, m, rates, ps, true, false)
		e.Close()
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("%s codon: lnL %v want %v", vc.name, got, want)
		}
	}
}

func TestPartialsTipsAndScalingOnDevice(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(13))
	tr, _ := tree.Random(rng, 16, 0.3)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 150)
	ps := seqgen.CompressPatterns(align)
	want := referenceLnL(t, tr, m, rates, ps, false, 4, 1)

	vc := variantCases[2] // OpenCL-GPU on R9 Nano
	e1 := newCase(t, vc, testConfig(tr, 4, ps.PatternCount(), 1, false))
	plain := driveEngine(t, e1, tr, m, rates, ps, false, false)
	e1.Close()
	e2 := newCase(t, vc, testConfig(tr, 4, ps.PatternCount(), 1, false))
	scaled := driveEngine(t, e2, tr, m, rates, ps, false, true)
	e2.Close()
	if math.Abs(plain-want) > 1e-8*math.Abs(want) {
		t.Errorf("plain lnL %v want %v", plain, want)
	}
	if math.Abs(scaled-want) > 1e-8*math.Abs(want) {
		t.Errorf("scaled lnL %v want %v", scaled, want)
	}
}

func TestFMAOffMatchesOn(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(19))
	tr, _ := tree.Random(rng, 8, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	ps, _ := seqgen.RandomPatterns(rng, 8, 4, 100)

	cfgOn := testConfig(tr, 4, 100, 1, false)
	cfgOff := cfgOn
	cfgOff.DisableFMA = true
	vc := variantCases[2]
	eOn := newCase(t, vc, cfgOn)
	lnOn := driveEngine(t, eOn, tr, m, rates, ps, true, false)
	eOn.Close()
	eOff := newCase(t, vc, cfgOff)
	lnOff := driveEngine(t, eOff, tr, m, rates, ps, true, false)
	eOff.Close()
	// FMA affects only rounding, never the value materially ("without loss
	// of precision", §VII-B1).
	if math.Abs(lnOn-lnOff) > 1e-9*math.Abs(lnOn) {
		t.Fatalf("FMA changed the result: %v vs %v", lnOn, lnOff)
	}
}

func TestSinglePrecisionOnDevice(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(23))
	tr, _ := tree.Random(rng, 8, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 100)
	ps := seqgen.CompressPatterns(align)
	want := referenceLnL(t, tr, m, rates, ps, true, 4, 1)

	e := newCase(t, variantCases[0], testConfig(tr, 4, ps.PatternCount(), 1, true))
	got := driveEngine(t, e, tr, m, rates, ps, true, false)
	e.Close()
	if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-4 {
		t.Fatalf("single precision lnL %v want %v (rel %v)", got, want, rel)
	}
}

func TestCodonWorkGroupReducedOnAMD(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(29))
	tr, _ := tree.Random(rng, 4, 0.1)
	cfg := testConfig(tr, 61, 64, 1, false)
	cfg.WorkGroupSize = 128

	amd, _ := device.FindDevice(device.OpenCL, "Radeon R9 Nano")
	eAMD, err := New(cfg, OpenCLGPU, amd)
	if err != nil {
		t.Fatal(err)
	}
	defer eAMD.Close()
	nv, _ := device.FindDevice(device.OpenCL, "Quadro P5000")
	eNV, err := New(cfg, OpenCLGPU, nv)
	if err != nil {
		t.Fatal(err)
	}
	defer eNV.Close()
	gA := eAMD.(*Engine[float64]).GroupPatterns()
	gN := eNV.(*Engine[float64]).GroupPatterns()
	if gA >= gN {
		t.Fatalf("AMD codon work-group (%d) must be smaller than NVIDIA's (%d)", gA, gN)
	}
}

func TestVariantDeviceMismatch(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(31))
	tr, _ := tree.Random(rng, 4, 0.1)
	cfg := testConfig(tr, 4, 10, 1, false)
	amd, _ := device.FindDevice(device.OpenCL, "Radeon R9 Nano")
	if _, err := New(cfg, CUDA, amd); err == nil {
		t.Fatal("CUDA variant must reject OpenCL devices")
	}
	cudaDev, _ := device.FindDevice(device.CUDA, "Quadro P5000")
	if _, err := New(cfg, OpenCLGPU, cudaDev); err == nil {
		t.Fatal("OpenCL variant must reject CUDA devices")
	}
	if _, err := New(cfg, Variant(99), amd); err == nil {
		t.Fatal("unknown variant must be rejected")
	}
	if _, err := New(cfg, OpenCLGPU, nil); err == nil {
		t.Fatal("nil device must be rejected")
	}
}

func TestDeviceMemoryReleasedOnClose(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(37))
	tr, _ := tree.Random(rng, 8, 0.1)
	dev, _ := device.FindDevice(device.OpenCL, "FirePro S9170")
	before := dev.AllocatedBytes()
	e, err := New(testConfig(tr, 4, 1000, 4, false), OpenCLGPU, dev)
	if err != nil {
		t.Fatal(err)
	}
	m := substmodel.NewJC69()
	rates, _ := substmodel.GammaRates(0.5, 4)
	ps, _ := seqgen.RandomPatterns(rng, 8, 4, 1000)
	driveEngine(t, e, tr, m, rates, ps, true, true)
	if dev.AllocatedBytes() <= before {
		t.Fatal("engine allocated no device memory")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if dev.AllocatedBytes() != before {
		t.Fatalf("leak: %d bytes still allocated", dev.AllocatedBytes()-before)
	}
	if err := e.Close(); err == nil {
		t.Fatal("double close must fail")
	}
}

func TestQueueClockAdvancesAndCounts(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(41))
	tr, _ := tree.Random(rng, 8, 0.1)
	dev, _ := device.FindDevice(device.CUDA, "Quadro P5000")
	e, err := New(testConfig(tr, 4, 500, 4, true), CUDA, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	m := substmodel.NewJC69()
	rates, _ := substmodel.GammaRates(0.5, 4)
	ps, _ := seqgen.RandomPatterns(rng, 8, 4, 500)
	driveEngine(t, e, tr, m, rates, ps, true, false)
	q := e.(*Engine[float32]).Queue()
	if q.Launches() == 0 {
		t.Fatal("no kernel launches recorded")
	}
	if q.ModeledTime() <= 0 {
		t.Fatal("modeled clock did not advance")
	}
	if q.BytesTransferred() == 0 {
		t.Fatal("no transfers recorded")
	}
}

func TestAccelEngineErrors(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(43))
	tr, _ := tree.Random(rng, 4, 0.1)
	dev, _ := device.FindDevice(device.OpenCL, "Radeon R9 Nano")
	e, err := New(testConfig(tr, 4, 10, 1, false), OpenCLGPU, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetTipStates(99, make([]int, 10)); err == nil {
		t.Error("expected error for bad tip index")
	}
	if err := e.SetTipStates(0, make([]int, 3)); err == nil {
		t.Error("expected error for wrong states length")
	}
	if err := e.SetCategoryRates([]float64{1, 2}); err == nil {
		t.Error("expected error for wrong rate count")
	}
	if _, err := e.GetPartials(2); err == nil {
		t.Error("expected error for unset partials")
	}
	if _, err := e.GetTransitionMatrix(0); err == nil {
		t.Error("expected error for unset matrix")
	}
	if err := e.UpdateTransitionMatrices(0, []int{0}, []float64{0.1}); err == nil {
		t.Error("expected error for empty eigen slot")
	}
	if _, err := e.CalculateRootLogLikelihoods(0, engine.None); err == nil {
		t.Error("expected error rooting on an unset buffer")
	}
	err = e.UpdatePartials([]engine.Operation{{
		Dest: 5, DestScaleWrite: engine.None, DestScaleRead: engine.None,
		Child1: 0, Child1Mat: 0, Child2: 1, Child2Mat: 1,
	}})
	if err == nil {
		t.Error("expected error for missing matrices")
	}
}

func TestVariantString(t *testing.T) {
	if CUDA.String() != "CUDA" || OpenCLGPU.String() != "OpenCL-GPU" || OpenCLX86.String() != "OpenCL-x86" {
		t.Fatal("variant names wrong")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant must render")
	}
}
