package accelimpl

import (
	"math/rand"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// tinyDevice returns an OpenCL GPU with almost no memory, for exercising
// out-of-memory paths.
func tinyDevice(memBytes int64) *device.Device {
	desc := device.RadeonR9Nano
	desc.Name = "Tiny GPU"
	desc.MemoryBytes = memBytes
	return device.NewDevice(desc, device.OpenCL, 2)
}

func TestEngineCreationFailsOnTinyDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, _ := tree.Random(rng, 8, 0.1)
	cfg := testConfig(tr, 4, 100000, 4, false)
	dev := tinyDevice(1 << 10) // 1 KiB: the matrix pool cannot fit
	if _, err := New(cfg, OpenCLGPU, dev); err == nil {
		t.Fatal("expected out-of-memory during engine creation")
	}
	// No leaked accounting after the failed construction.
	if dev.AllocatedBytes() != 0 {
		t.Fatalf("leak after failed construction: %d bytes", dev.AllocatedBytes())
	}
}

func TestLazyPartialsAllocationFailureSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, _ := tree.Random(rng, 8, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	ps, _ := seqgen.RandomPatterns(rng, 8, 4, 4096)
	// Enough memory for matrices and tips but not for all internal
	// partials: 15 partials buffers × 4096·4·8 = 1.9 MiB needed; grant 1 MiB.
	dev := tinyDevice(1 << 20)
	cfg := testConfig(tr, 4, ps.PatternCount(), 1, false)
	e, err := New(cfg, OpenCLGPU, dev)
	if err != nil {
		t.Skipf("construction already failed: %v", err)
	}
	defer e.Close()
	ed, _ := m.Eigen()
	steps := []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(rates.Rates),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := e.SetTipStates(i, ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	if err := e.UpdatePartials(ops); err == nil {
		t.Fatal("expected out-of-memory during partials allocation")
	}
}
