package accelimpl

import (
	"fmt"
	"math"
	"time"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/flops"
	"gobeagle/internal/kernels"
	"gobeagle/internal/reuse"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// SetTipStates uploads compact states for a tip buffer.
func (e *Engine[T]) SetTipStates(buf int, states []int) error {
	if buf < 0 || buf >= e.cfg.TipCount {
		return fmt.Errorf("accelimpl: tip buffer %d out of range [0,%d)", buf, e.cfg.TipCount)
	}
	if len(states) != e.cfg.Dims.PatternCount {
		return fmt.Errorf("accelimpl: tip states length %d, want %d", len(states), e.cfg.Dims.PatternCount)
	}
	host := make([]int32, len(states))
	for i, st := range states {
		if st < 0 {
			return fmt.Errorf("accelimpl: negative state %d at pattern %d", st, i)
		}
		if st > e.cfg.Dims.StateCount {
			st = e.cfg.Dims.StateCount
		}
		host[i] = int32(st)
	}
	if e.tipStates[buf] == nil {
		b, err := device.Alloc[int32](e.dev, len(host))
		if err != nil {
			return err
		}
		e.tipStates[buf] = b
	}
	if err := device.CopyToDevice(e.q, e.tipStates[buf], host); err != nil {
		return err
	}
	e.reuse.InvalidatePartials(buf)
	return nil
}

// SetTipPartials uploads per-pattern partials for a tip, replicated across
// rate categories.
func (e *Engine[T]) SetTipPartials(buf int, partials []float64) error {
	if buf < 0 || buf >= e.cfg.TipCount {
		return fmt.Errorf("accelimpl: tip buffer %d out of range [0,%d)", buf, e.cfg.TipCount)
	}
	d := e.cfg.Dims
	if len(partials) != d.PatternCount*d.StateCount {
		return fmt.Errorf("accelimpl: tip partials length %d, want %d", len(partials), d.PatternCount*d.StateCount)
	}
	host := make([]T, d.PartialsLen())
	for c := 0; c < d.CategoryCount; c++ {
		off := c * d.PatternCount * d.StateCount
		for i, v := range partials {
			host[off+i] = T(v)
		}
	}
	dst, err := e.ensurePartials(buf)
	if err != nil {
		return err
	}
	if e.tipStates[buf] != nil {
		e.tipStates[buf].Free()
		e.tipStates[buf] = nil
	}
	if err := device.CopyToDevice(e.q, dst, host); err != nil {
		return err
	}
	e.reuse.InvalidatePartials(buf)
	return nil
}

// SetPartials uploads a full partials buffer.
func (e *Engine[T]) SetPartials(buf int, partials []float64) error {
	d := e.cfg.Dims
	if len(partials) != d.PartialsLen() {
		return fmt.Errorf("accelimpl: partials length %d, want %d", len(partials), d.PartialsLen())
	}
	dst, err := e.ensurePartials(buf)
	if err != nil {
		return err
	}
	if buf < e.cfg.TipCount && e.tipStates[buf] != nil {
		e.tipStates[buf].Free()
		e.tipStates[buf] = nil
	}
	host := make([]T, len(partials))
	for i, v := range partials {
		host[i] = T(v)
	}
	if err := device.CopyToDevice(e.q, dst, host); err != nil {
		return err
	}
	e.reuse.InvalidatePartials(buf)
	return nil
}

// GetPartials downloads a partials buffer.
func (e *Engine[T]) GetPartials(buf int) ([]float64, error) {
	if err := e.checkPartialsIndex(buf); err != nil {
		return nil, err
	}
	if e.partials[buf] == nil {
		return nil, fmt.Errorf("accelimpl: partials buffer %d has not been computed or set", buf)
	}
	host := make([]T, e.cfg.Dims.PartialsLen())
	if err := device.CopyFromDevice(e.q, host, e.partials[buf]); err != nil {
		return nil, err
	}
	out := make([]float64, len(host))
	for i, v := range host {
		out[i] = float64(v)
	}
	return out, nil
}

// SetEigenDecomposition stores a decomposition; it stays host-side, as the
// decomposition feeds the device-side transition-matrix kernel as launch
// constants.
func (e *Engine[T]) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	if slot < 0 || slot >= len(e.eigens) {
		return fmt.Errorf("accelimpl: eigen slot %d out of range [0,%d)", slot, len(e.eigens))
	}
	n := e.cfg.Dims.StateCount
	if len(values) != n || len(vectors) != n*n || len(inverseVectors) != n*n {
		return fmt.Errorf("accelimpl: eigen decomposition sizes %d/%d/%d, want %d/%d/%d",
			len(values), len(vectors), len(inverseVectors), n, n*n, n*n)
	}
	e.eigens[slot] = &kernels.Eigen{
		StateCount:     n,
		Values:         append([]float64(nil), values...),
		Vectors:        append([]float64(nil), vectors...),
		InverseVectors: append([]float64(nil), inverseVectors...),
	}
	e.reuse.InvalidateModel()
	return nil
}

// SetCategoryRates sets per-category relative rates.
func (e *Engine[T]) SetCategoryRates(rates []float64) error {
	if len(rates) != e.cfg.Dims.CategoryCount {
		return fmt.Errorf("accelimpl: %d category rates, want %d", len(rates), e.cfg.Dims.CategoryCount)
	}
	copy(e.catRates, rates)
	e.reuse.InvalidateModel()
	return nil
}

// SetCategoryWeights sets per-category mixture weights.
func (e *Engine[T]) SetCategoryWeights(weights []float64) error {
	if len(weights) != e.cfg.Dims.CategoryCount {
		return fmt.Errorf("accelimpl: %d category weights, want %d", len(weights), e.cfg.Dims.CategoryCount)
	}
	copy(e.catWts, weights)
	e.reuse.InvalidateModel()
	return nil
}

// SetStateFrequencies sets the stationary distribution π.
func (e *Engine[T]) SetStateFrequencies(freqs []float64) error {
	if len(freqs) != e.cfg.Dims.StateCount {
		return fmt.Errorf("accelimpl: %d frequencies, want %d", len(freqs), e.cfg.Dims.StateCount)
	}
	copy(e.freqs, freqs)
	e.reuse.InvalidateModel()
	return nil
}

// SetPatternWeights sets per-pattern multiplicities.
func (e *Engine[T]) SetPatternWeights(weights []float64) error {
	if len(weights) != e.cfg.Dims.PatternCount {
		return fmt.Errorf("accelimpl: %d pattern weights, want %d", len(weights), e.cfg.Dims.PatternCount)
	}
	copy(e.patWts, weights)
	e.reuse.InvalidateModel()
	return nil
}

// SetTransitionMatrix uploads an explicit transition matrix.
func (e *Engine[T]) SetTransitionMatrix(matrix int, values []float64) error {
	if err := e.checkMatrixIndex(matrix); err != nil {
		return err
	}
	if len(values) != e.cfg.Dims.MatrixLen() {
		return fmt.Errorf("accelimpl: matrix length %d, want %d", len(values), e.cfg.Dims.MatrixLen())
	}
	host := make([]T, len(values))
	for i, v := range values {
		host[i] = T(v)
	}
	if err := device.CopyToDevice(e.q, e.matrices[matrix], host); err != nil {
		return err
	}
	e.matSet[matrix] = true
	e.reuse.InvalidateMatrix(matrix)
	return nil
}

// GetTransitionMatrix downloads a matrix buffer.
func (e *Engine[T]) GetTransitionMatrix(matrix int) ([]float64, error) {
	if err := e.checkMatrixIndex(matrix); err != nil {
		return nil, err
	}
	if !e.matSet[matrix] {
		return nil, fmt.Errorf("accelimpl: matrix buffer %d has not been computed or set", matrix)
	}
	host := make([]T, e.cfg.Dims.MatrixLen())
	if err := device.CopyFromDevice(e.q, host, e.matrices[matrix]); err != nil {
		return nil, err
	}
	out := make([]float64, len(host))
	for i, v := range host {
		out[i] = float64(v)
	}
	return out, nil
}

// UpdateTransitionMatrices computes the listed matrices on the device, one
// kernel launch per matrix with one work-item per matrix row.
func (e *Engine[T]) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	if eigenSlot < 0 || eigenSlot >= len(e.eigens) {
		return fmt.Errorf("accelimpl: eigen slot %d out of range [0,%d)", eigenSlot, len(e.eigens))
	}
	ed := e.eigens[eigenSlot]
	if ed == nil {
		return fmt.Errorf("accelimpl: eigen slot %d is empty", eigenSlot)
	}
	if len(matrices) != len(edgeLengths) {
		return fmt.Errorf("accelimpl: %d matrices but %d edge lengths", len(matrices), len(edgeLengths))
	}
	d := e.cfg.Dims
	s := d.StateCount
	for i, m := range matrices {
		if err := e.checkMatrixIndex(m); err != nil {
			return err
		}
		if edgeLengths[i] < 0 {
			return fmt.Errorf("accelimpl: negative edge length %v", edgeLengths[i])
		}
	}
	rows := d.CategoryCount * s
	cost := device.Cost{
		Flops:      float64(rows) * float64(s) * float64(2*s+2),
		Bytes:      float64(d.MatrixLen()) * float64(e.elemSize()),
		Efficiency: e.efficiency,
		GroupSize:  s,
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := e.cfg.Trace.Enabled()
	if traceOn {
		tstart = e.cfg.Trace.Now()
	}
	computed := 0
	for i, m := range matrices {
		// Content-addressed reuse: the device buffer already holds this
		// exact (model, eigen slot, edge length) result, so no launch.
		if !e.reuse.ShouldComputeMatrix(m, eigenSlot, edgeLengths[i]) {
			continue
		}
		out := e.matrices[m].Data()
		length := edgeLengths[i]
		rates := e.catRates
		if err := e.q.LaunchKernel(device.Launch{Global: rows, Local: s}, cost, func(item int) {
			if item >= rows {
				return
			}
			kernels.TransitionMatrixRow(out, ed, length, rates, item)
		}); err != nil {
			return err
		}
		e.matSet[m] = true
		computed++
	}
	if !start.IsZero() && computed > 0 {
		e.cfg.Telemetry.Record(telemetry.KernelMatrices, computed, time.Since(start))
	}
	if traceOn {
		e.cfg.Trace.Record(trace.Span{Kind: trace.KindMatrices, Lane: int32(e.cfg.TraceLane),
			Start: tstart, Dur: e.cfg.Trace.Now() - tstart, Arg0: int64(computed)})
	}
	return nil
}

func (e *Engine[T]) elemSize() int {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 4
	}
	return 8
}

// Kernel-efficiency calibration for the device performance model. Real
// likelihood kernels run well below a device's theoretical roofline; these
// fractions are calibrated once against the paper's measurements and then
// reused for every experiment.
const (
	// gpuBaseEfficiency: fraction of the roofline rate the GPU-style
	// nucleotide kernel achieves (Fig. 4: R9 Nano saturates at 445 GFLOPS
	// against a ~680 GFLOPS memory-bandwidth bound).
	gpuBaseEfficiency = 0.65
	// x86Efficiency: fraction of CPU peak the loop-over-states kernel
	// achieves (Fig. 4: 328 GFLOPS peak on a 2150 GFLOPS-peak dual Xeon).
	x86Efficiency = 0.20
	// x86DRAMFraction: fraction of nominal kernel traffic reaching DRAM on
	// cache-rich CPUs.
	x86DRAMFraction = 0.5
	// gpuStyleOnCPUEfficiency: the GPU-style one-work-item-per-entry
	// kernels are drastically inefficient on CPU-class devices — the very
	// observation that motivated the separate OpenCL-x86 solution (Table V:
	// 15.75 vs ~98 GFLOPS on the dual Xeon).
	gpuStyleOnCPUEfficiency = 0.07
)

// kernelEfficiency returns the calibrated efficiency for the variant and
// state count. Higher-state-count kernels fall further from the roofline
// (register/local-memory pressure): the √(4/S) falloff reproduces the codon
// model's ~16% of peak on the R9 Nano (Fig. 4, 1324 of 8192 GFLOPS).
func (e *Engine[T]) kernelEfficiency() float64 {
	eff := e.efficiency // FMA build penalty, if any
	s := float64(e.cfg.Dims.StateCount)
	if e.variant == OpenCLX86 {
		return eff * x86Efficiency
	}
	if e.dev.Desc.Kind != device.KindGPU {
		return eff * gpuStyleOnCPUEfficiency
	}
	return eff * gpuBaseEfficiency * math.Sqrt(4/s)
}

// opCost returns the launch cost of one partial-likelihoods operation:
// effective flops from the flops package and roofline memory traffic (two
// child partials read, destination written, matrices read once).
func (e *Engine[T]) opCost() device.Cost {
	d := e.cfg.Dims
	elem := float64(e.elemSize())
	bytes := float64(d.CategoryCount)*float64(d.PatternCount)*float64(3*d.StateCount)*elem +
		2*float64(d.MatrixLen())*elem
	groupItems := e.groupPats
	if e.variant != OpenCLX86 {
		groupItems = e.groupPats * d.StateCount
	} else {
		bytes *= x86DRAMFraction
	}
	return device.Cost{
		Flops:      flops.PartialsOp(d),
		Bytes:      bytes,
		Efficiency: e.kernelEfficiency(),
		GroupSize:  groupItems,
	}
}

// validateOps pre-checks every operation (allocating destination and scale
// buffers in listed order) so the reuse filter's version bumps can never be
// followed by a validation failure that would leave the tracker ahead of the
// actual buffer contents.
func (e *Engine[T]) validateOps(ops []engine.Operation) error {
	for _, op := range ops {
		if _, err := e.ensurePartials(op.Dest); err != nil {
			return err
		}
		if op.Dest < e.cfg.TipCount && e.tipStates[op.Dest] != nil {
			return fmt.Errorf("accelimpl: buffer %d holds compact tip states and cannot be a destination", op.Dest)
		}
		if err := e.checkMatrixIndex(op.Child1Mat); err != nil {
			return err
		}
		if err := e.checkMatrixIndex(op.Child2Mat); err != nil {
			return err
		}
		if !e.matSet[op.Child1Mat] || !e.matSet[op.Child2Mat] {
			return fmt.Errorf("accelimpl: operation uses uncomputed matrices %d/%d", op.Child1Mat, op.Child2Mat)
		}
		if _, _, err := e.operand(op.Child1); err != nil {
			return err
		}
		if _, _, err := e.operand(op.Child2); err != nil {
			return err
		}
		if op.DestScaleWrite != engine.None {
			if _, err := e.ensureScale(op.DestScaleWrite); err != nil {
				return err
			}
		}
		if op.DestScaleRead != engine.None {
			// The read buffer must exist before the batch: written by an
			// earlier batch, or allocated above by an earlier listed
			// operation's DestScaleWrite.
			if err := e.checkScaleIndex(op.DestScaleRead); err != nil {
				return err
			}
			if e.scale[op.DestScaleRead] == nil {
				return fmt.Errorf("accelimpl: scale buffer %d has not been written", op.DestScaleRead)
			}
		}
	}
	return nil
}

// UpdatePartials executes the operation list; each operation is one kernel
// launch (plus read-scale and rescale launches when requested).
func (e *Engine[T]) UpdatePartials(ops []engine.Operation) error {
	if err := e.validateOps(ops); err != nil {
		return err
	}
	// Incremental re-evaluation: drop operations whose destination already
	// holds the result of an identical computation over unchanged inputs
	// (decided in submission order, the documented dependency order).
	var skipped int
	if e.reuse.Enabled() {
		kept := e.scratch[:0]
		for _, op := range ops {
			if e.reuse.ShouldComputeOp(op.Dest, op.Child1, op.Child1Mat,
				op.Child2, op.Child2Mat, op.DestScaleWrite, op.DestScaleRead) {
				kept = append(kept, op)
			}
		}
		e.scratch = kept
		skipped = len(ops) - len(kept)
		ops = kept
	}
	// Telemetry fast path: one atomic load when disabled, no timestamps taken.
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		e.cfg.Telemetry.NextBatch()
		start = time.Now()
	}
	var tstart int64
	var tbatch uint64
	traceOn := e.cfg.Trace.Enabled()
	if traceOn {
		tbatch = e.cfg.Trace.NextBatch()
		tstart = e.cfg.Trace.Now()
	}
	for _, op := range ops {
		dest, err := e.ensurePartials(op.Dest)
		if err != nil {
			return err
		}
		s1, p1, err := e.operand(op.Child1)
		if err != nil {
			return err
		}
		s2, p2, err := e.operand(op.Child2)
		if err != nil {
			return err
		}
		m1 := e.matrices[op.Child1Mat].Data()
		m2 := e.matrices[op.Child2Mat].Data()
		// Normalize so a compact-states operand, if any, comes first.
		if s1 == nil && s2 != nil {
			s1, s2 = s2, s1
			p1, p2 = p2, p1
			m1, m2 = m2, m1
		}
		if err := e.launchOp(dest.Data(), s1, p1, m1, s2, p2, m2); err != nil {
			return err
		}
		if op.DestScaleRead != engine.None {
			if err := e.launchReadScale(dest.Data(), op.DestScaleRead); err != nil {
				return err
			}
		}
		if op.DestScaleWrite != engine.None {
			if err := e.launchRescale(dest.Data(), op.DestScaleWrite); err != nil {
				return err
			}
		}
	}
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelPartials, len(ops), time.Since(start))
		e.cfg.Telemetry.AddFlops(flops.PartialsOp(e.cfg.Dims) * float64(len(ops)))
	}
	if traceOn {
		e.cfg.Trace.Record(trace.Span{Kind: trace.KindBatch, Lane: int32(e.cfg.TraceLane), Batch: tbatch,
			Start: tstart, Dur: e.cfg.Trace.Now() - tstart, Arg0: int64(len(ops)), Arg1: int64(skipped)})
	}
	return nil
}

// ReuseStats snapshots the incremental re-evaluation counters; the zero
// value (Enabled false) when the engine was built without Config.Reuse.
func (e *Engine[T]) ReuseStats() reuse.Stats { return e.reuse.Stats() }

// operand resolves a child buffer to device data: compact states or
// partials.
func (e *Engine[T]) operand(buf int) (states []int32, partials []T, err error) {
	if err := e.checkPartialsIndex(buf); err != nil {
		return nil, nil, err
	}
	if buf < e.cfg.TipCount && e.tipStates[buf] != nil {
		return e.tipStates[buf].Data(), nil, nil
	}
	if e.partials[buf] == nil {
		return nil, nil, fmt.Errorf("accelimpl: operand buffer %d holds no data", buf)
	}
	return nil, e.partials[buf].Data(), nil
}

// launchOp dispatches the partials kernel appropriate to the variant and
// operand kinds.
func (e *Engine[T]) launchOp(dest []T, s1 []int32, p1 []T, m1 []T, s2 []int32, p2 []T, m2 []T) error {
	d := e.cfg.Dims
	cost := e.opCost()
	if e.variant == OpenCLX86 {
		// One work-item per pattern, looping over categories and states.
		launch := device.Launch{Global: d.PatternCount, Local: e.groupPats}
		body := func(p int) {
			if p >= d.PatternCount {
				return
			}
			switch {
			case s1 != nil && s2 != nil:
				kernels.StatesStates(dest, s1, m1, s2, m2, d, p, p+1)
			case s1 != nil:
				if e.useFMA {
					kernels.StatesPartialsFMA(dest, s1, m1, p2, m2, d, p, p+1)
				} else {
					kernels.StatesPartials(dest, s1, m1, p2, m2, d, p, p+1)
				}
			default:
				if e.useFMA {
					kernels.PartialsPartialsFMA(dest, p1, m1, p2, m2, d, p, p+1)
				} else {
					kernels.PartialsPartials(dest, p1, m1, p2, m2, d, p, p+1)
				}
			}
		}
		return e.q.LaunchKernel(launch, cost, body)
	}
	// GPU variants: one work-item per (category, pattern, state) entry.
	global := d.CategoryCount * d.PatternCount * d.StateCount
	launch := device.Launch{Global: global, Local: e.groupPats * d.StateCount}
	body := func(item int) {
		if item >= global {
			return
		}
		switch {
		case s1 != nil && s2 != nil:
			kernels.StatesStatesEntry(dest, s1, m1, s2, m2, d, item)
		case s1 != nil:
			if e.useFMA {
				kernels.StatesPartialsEntryFMA(dest, s1, m1, p2, m2, d, item)
			} else {
				kernels.StatesPartialsEntry(dest, s1, m1, p2, m2, d, item)
			}
		default:
			if e.useFMA {
				kernels.PartialsPartialsEntryFMA(dest, p1, m1, p2, m2, d, item)
			} else {
				kernels.PartialsPartialsEntry(dest, p1, m1, p2, m2, d, item)
			}
		}
	}
	return e.q.LaunchKernel(launch, cost, body)
}

// launchRescale rescales a destination buffer into a scale buffer, one
// work-item per pattern.
func (e *Engine[T]) launchRescale(dest []T, scaleBuf int) error {
	sb, err := e.ensureScale(scaleBuf)
	if err != nil {
		return err
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	d := e.cfg.Dims
	scale := sb.Data()
	elem := float64(e.elemSize())
	cost := device.Cost{
		Flops:      float64(d.PartialsLen()),
		Bytes:      2 * float64(d.PartialsLen()) * elem,
		Efficiency: e.efficiency,
		GroupSize:  e.groupPats,
	}
	err = e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.RescalePartials(dest, scale, d, p, p+1)
	})
	if err == nil && !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelRescale, 1, time.Since(start))
	}
	return err
}

// launchReadScale applies previously written scale factors to a freshly
// computed destination buffer (fixed scaling), one work-item per pattern.
func (e *Engine[T]) launchReadScale(dest []T, scaleBuf int) error {
	if err := e.checkScaleIndex(scaleBuf); err != nil {
		return err
	}
	if e.scale[scaleBuf] == nil {
		return fmt.Errorf("accelimpl: scale buffer %d has not been written", scaleBuf)
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	d := e.cfg.Dims
	scale := e.scale[scaleBuf].Data()
	elem := float64(e.elemSize())
	cost := device.Cost{
		Flops:      float64(d.PartialsLen()),
		Bytes:      2*float64(d.PartialsLen())*elem + float64(d.PatternCount)*8,
		Efficiency: e.efficiency,
		GroupSize:  e.groupPats,
	}
	err := e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.ApplyReadScale(dest, scale, d, p, p+1)
	})
	if err == nil && !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelRescale, 1, time.Since(start))
	}
	return err
}

// ResetScaleFactors zeroes a scale buffer on the device.
func (e *Engine[T]) ResetScaleFactors(scaleBuf int) error {
	sb, err := e.ensureScale(scaleBuf)
	if err != nil {
		return err
	}
	zero := make([]float64, e.cfg.Dims.PatternCount)
	if err := device.CopyToDevice(e.q, sb, zero); err != nil {
		return err
	}
	e.reuse.InvalidateScale(scaleBuf)
	return nil
}

// AccumulateScaleFactors sums the listed scale buffers into cumBuf with a
// per-pattern kernel.
func (e *Engine[T]) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	cum, err := e.ensureScale(cumBuf)
	if err != nil {
		return err
	}
	factors := make([][]float64, 0, len(scaleBufs))
	for _, b := range scaleBufs {
		if err := e.checkScaleIndex(b); err != nil {
			return err
		}
		if e.scale[b] == nil {
			return fmt.Errorf("accelimpl: scale buffer %d has not been written", b)
		}
		factors = append(factors, e.scale[b].Data())
	}
	d := e.cfg.Dims
	out := cum.Data()
	cost := device.Cost{
		Flops:     float64(d.PatternCount * len(factors)),
		Bytes:     float64(d.PatternCount*(len(factors)+1)) * 8,
		GroupSize: e.groupPats,
	}
	if err := e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.AccumulateScaleFactors(out, factors, p, p+1)
	}); err != nil {
		return err
	}
	e.reuse.InvalidateScale(cumBuf)
	return nil
}

// siteLikelihoods runs the integration kernel on the device and downloads
// per-pattern site likelihoods plus cumulative scale factors.
func (e *Engine[T]) siteLikelihoods(rootBuf, cumScaleBuf int) (site, scale []float64, err error) {
	if err := e.checkPartialsIndex(rootBuf); err != nil {
		return nil, nil, err
	}
	if rootBuf < e.cfg.TipCount && e.tipStates[rootBuf] != nil {
		return nil, nil, fmt.Errorf("accelimpl: root buffer %d holds compact states", rootBuf)
	}
	if e.partials[rootBuf] == nil {
		return nil, nil, fmt.Errorf("accelimpl: root buffer %d holds no data", rootBuf)
	}
	d := e.cfg.Dims
	root := e.partials[rootBuf].Data()
	out := e.siteBuf.Data()
	elem := float64(e.elemSize())
	cost := device.Cost{
		Flops:      float64(d.CategoryCount) * float64(d.PatternCount) * float64(2*d.StateCount+2),
		Bytes:      float64(d.PartialsLen()) * elem,
		Efficiency: e.efficiency,
		GroupSize:  e.groupPats,
	}
	wts, fr := e.catWts, e.freqs
	if err := e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.SiteLikelihoods(out, root, wts, fr, d, p, p+1)
	}); err != nil {
		return nil, nil, err
	}
	site = make([]float64, d.PatternCount)
	if err := device.CopyFromDevice(e.q, site, e.siteBuf); err != nil {
		return nil, nil, err
	}
	if cumScaleBuf != engine.None {
		if err := e.checkScaleIndex(cumScaleBuf); err != nil {
			return nil, nil, err
		}
		if e.scale[cumScaleBuf] == nil {
			return nil, nil, fmt.Errorf("accelimpl: scale buffer %d has not been written", cumScaleBuf)
		}
		scale = make([]float64, d.PatternCount)
		if err := device.CopyFromDevice(e.q, scale, e.scale[cumScaleBuf]); err != nil {
			return nil, nil, err
		}
	}
	return site, scale, nil
}

// CalculateRootLogLikelihoods integrates the root partials into the total
// log likelihood.
func (e *Engine[T]) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := e.cfg.Trace.Enabled()
	if traceOn {
		tstart = e.cfg.Trace.Now()
	}
	site, scale, err := e.siteLikelihoods(rootBuf, cumScaleBuf)
	if err != nil {
		return 0, err
	}
	lnL := kernels.RootLogLikelihood(site, e.patWts, scale, 0, len(site))
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelRoot, 1, time.Since(start))
	}
	if traceOn {
		e.cfg.Trace.Record(trace.Span{Kind: trace.KindRoot, Lane: int32(e.cfg.TraceLane),
			Start: tstart, Dur: e.cfg.Trace.Now() - tstart, Arg0: int64(len(site))})
	}
	return lnL, nil
}

// SiteLogLikelihoods returns per-pattern root log likelihoods.
func (e *Engine[T]) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	site, scale, err := e.siteLikelihoods(rootBuf, cumScaleBuf)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(site))
	for p, s := range site {
		l := math.Log(s)
		if scale != nil {
			l += scale[p]
		}
		out[p] = l
	}
	return out, nil
}

// UpdateTransitionDerivatives computes derivative matrices host-side from
// the eigendecomposition and uploads them into matrix buffers. Derivatives
// are not on the hot path of any of the paper's benchmarks, so the transfer
// cost is acceptable and is charged to the queue like any other upload.
func (e *Engine[T]) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	if eigenSlot < 0 || eigenSlot >= len(e.eigens) {
		return fmt.Errorf("accelimpl: eigen slot %d out of range [0,%d)", eigenSlot, len(e.eigens))
	}
	ed := e.eigens[eigenSlot]
	if ed == nil {
		return fmt.Errorf("accelimpl: eigen slot %d is empty", eigenSlot)
	}
	if len(d1Matrices) != len(edgeLengths) {
		return fmt.Errorf("accelimpl: %d derivative matrices but %d edge lengths", len(d1Matrices), len(edgeLengths))
	}
	if d2Matrices != nil && len(d2Matrices) != len(d1Matrices) {
		return fmt.Errorf("accelimpl: %d second-derivative matrices for %d first", len(d2Matrices), len(d1Matrices))
	}
	for i, m := range d1Matrices {
		if err := e.checkMatrixIndex(m); err != nil {
			return err
		}
		if d2Matrices != nil {
			if err := e.checkMatrixIndex(d2Matrices[i]); err != nil {
				return err
			}
		}
		if edgeLengths[i] < 0 {
			return fmt.Errorf("accelimpl: negative edge length %v", edgeLengths[i])
		}
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := e.cfg.Trace.Enabled()
	if traceOn {
		tstart = e.cfg.Trace.Now()
	}
	n := e.cfg.Dims.MatrixLen()
	host1 := make([]T, n)
	var host2 []T
	if d2Matrices != nil {
		host2 = make([]T, n)
	}
	for i, m := range d1Matrices {
		kernels.UpdateTransitionDerivatives(host1, host2, ed, edgeLengths[i], e.catRates)
		if err := device.CopyToDevice(e.q, e.matrices[m], host1); err != nil {
			return err
		}
		e.matSet[m] = true
		// Derivative uploads overwrite ordinary matrix buffers, so any
		// content-addressed transition-matrix entry for them is stale.
		e.reuse.InvalidateMatrix(m)
		if d2Matrices != nil {
			if err := device.CopyToDevice(e.q, e.matrices[d2Matrices[i]], host2); err != nil {
				return err
			}
			e.matSet[d2Matrices[i]] = true
			e.reuse.InvalidateMatrix(d2Matrices[i])
		}
	}
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelDerivatives, len(d1Matrices), time.Since(start))
	}
	if traceOn {
		e.cfg.Trace.Record(trace.Span{Kind: trace.KindDerivatives, Lane: int32(e.cfg.TraceLane),
			Start: tstart, Dur: e.cfg.Trace.Now() - tstart, Arg0: int64(len(d1Matrices))})
	}
	return nil
}

// CalculateEdgeDerivatives integrates across one branch on the device,
// returning the log likelihood and its branch-length derivatives.
func (e *Engine[T]) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (float64, float64, float64, error) {
	for _, b := range []int{parentBuf, childBuf} {
		if err := e.checkPartialsIndex(b); err != nil {
			return 0, 0, 0, err
		}
		if (b < e.cfg.TipCount && e.tipStates[b] != nil) || e.partials[b] == nil {
			return 0, 0, 0, fmt.Errorf("accelimpl: edge derivatives require loaded partials buffers")
		}
	}
	mats := []int{matrix, d1Matrix}
	if d2Matrix != engine.None {
		mats = append(mats, d2Matrix)
	}
	for _, mi := range mats {
		if err := e.checkMatrixIndex(mi); err != nil {
			return 0, 0, 0, err
		}
		if !e.matSet[mi] {
			return 0, 0, 0, fmt.Errorf("accelimpl: matrix buffer %d not available", mi)
		}
	}
	var scale []float64
	if cumScaleBuf != engine.None {
		if err := e.checkScaleIndex(cumScaleBuf); err != nil {
			return 0, 0, 0, err
		}
		if e.scale[cumScaleBuf] == nil {
			return 0, 0, 0, fmt.Errorf("accelimpl: scale buffer %d has not been written", cumScaleBuf)
		}
		scale = make([]float64, e.cfg.Dims.PatternCount)
		if err := device.CopyFromDevice(e.q, scale, e.scale[cumScaleBuf]); err != nil {
			return 0, 0, 0, err
		}
	}
	d := e.cfg.Dims
	parent := e.partials[parentBuf].Data()
	child := e.partials[childBuf].Data()
	m := e.matrices[matrix].Data()
	m1 := e.matrices[d1Matrix].Data()
	var m2 []T
	if d2Matrix != engine.None {
		m2 = e.matrices[d2Matrix].Data()
	}
	siteL := make([]float64, d.PatternCount)
	siteD1 := make([]float64, d.PatternCount)
	var siteD2 []float64
	if m2 != nil {
		siteD2 = make([]float64, d.PatternCount)
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	wts, fr := e.catWts, e.freqs
	cost := e.opCost()
	cost.Flops *= 2 // likelihood plus derivative accumulations
	if err := e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.EdgeSiteDerivatives(siteL, siteD1, siteD2, parent, child, m, m1, m2,
			wts, fr, d, p, p+1)
	}); err != nil {
		return 0, 0, 0, err
	}
	lnL := kernels.RootLogLikelihood(siteL, e.patWts, scale, 0, d.PatternCount)
	d1, d2 := kernels.ReduceEdgeDerivatives(siteL, siteD1, siteD2, e.patWts, 0, d.PatternCount)
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelEdge, 1, time.Since(start))
	}
	return lnL, d1, d2, nil
}

// CalculateEdgeLogLikelihoods integrates across one branch on the device.
func (e *Engine[T]) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	for _, b := range []int{parentBuf, childBuf} {
		if err := e.checkPartialsIndex(b); err != nil {
			return 0, err
		}
		if b < e.cfg.TipCount && e.tipStates[b] != nil {
			return 0, fmt.Errorf("accelimpl: edge likelihood requires partials buffers (use SetTipPartials for tips)")
		}
		if e.partials[b] == nil {
			return 0, fmt.Errorf("accelimpl: buffer %d holds no data", b)
		}
	}
	if err := e.checkMatrixIndex(matrix); err != nil {
		return 0, err
	}
	if !e.matSet[matrix] {
		return 0, fmt.Errorf("accelimpl: matrix buffer %d not available", matrix)
	}
	var scale []float64
	if cumScaleBuf != engine.None {
		if err := e.checkScaleIndex(cumScaleBuf); err != nil {
			return 0, err
		}
		if e.scale[cumScaleBuf] == nil {
			return 0, fmt.Errorf("accelimpl: scale buffer %d has not been written", cumScaleBuf)
		}
		scale = make([]float64, e.cfg.Dims.PatternCount)
		if err := device.CopyFromDevice(e.q, scale, e.scale[cumScaleBuf]); err != nil {
			return 0, err
		}
	}
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	d := e.cfg.Dims
	parent := e.partials[parentBuf].Data()
	child := e.partials[childBuf].Data()
	m := e.matrices[matrix].Data()
	out := e.siteBuf.Data()
	wts, fr := e.catWts, e.freqs
	cost := e.opCost()
	if err := e.q.LaunchKernel(device.Launch{Global: d.PatternCount, Local: e.groupPats}, cost, func(p int) {
		if p >= d.PatternCount {
			return
		}
		kernels.EdgeSiteLikelihoods(out, parent, child, m, wts, fr, d, p, p+1)
	}); err != nil {
		return 0, err
	}
	site := make([]float64, d.PatternCount)
	if err := device.CopyFromDevice(e.q, site, e.siteBuf); err != nil {
		return 0, err
	}
	lnL := kernels.RootLogLikelihood(site, e.patWts, scale, 0, d.PatternCount)
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelEdge, 1, time.Since(start))
	}
	return lnL, nil
}
