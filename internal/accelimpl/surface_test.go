package accelimpl

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// TestAccelSurfaceParityWithCPU drives the remaining API surface — partials
// and matrix round trips, per-site log likelihoods, edge likelihoods and
// edge derivatives — on a simulated device and checks exact agreement with
// the CPU serial engine.
func TestAccelSurfaceParityWithCPU(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(91))
	tr, err := tree.ParseNewick("((a:0.1,b:0.2):0.07,(c:0.15,d:0.05):0.09);")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 2)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 200)
	ps := seqgen.CompressPatterns(align)

	cfg := testConfig(tr, 4, ps.PatternCount(), 2, false)
	cfg.MatrixBuffers = 12
	dev, _ := device.FindDevice(device.OpenCL, "FirePro S9170")
	acc, err := New(cfg, OpenCLGPU, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	cpu, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer cpu.Close()

	if !strings.Contains(acc.Name(), "OpenCL-GPU") {
		t.Fatalf("name %q", acc.Name())
	}

	// Drive both with expanded tips (needed for edge calls on tips).
	for _, e := range []engine.Engine{acc, cpu} {
		driveEngine(t, e, tr, m, rates, ps, false, false)
	}

	// GetPartials parity at the root.
	root := tr.Root.Index
	pa, err := acc.GetPartials(root)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := cpu.GetPartials(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if math.Abs(pa[i]-pc[i]) > 1e-12 {
			t.Fatalf("partials mismatch at %d: %v vs %v", i, pa[i], pc[i])
		}
	}

	// SetPartials/GetPartials round trip on a spare buffer index.
	in := make([]float64, cfg.Dims.PartialsLen())
	for i := range in {
		in[i] = rng.Float64()
	}
	if err := acc.SetPartials(root, in); err != nil {
		t.Fatal(err)
	}
	out, err := acc.GetPartials(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("partials round trip mismatch at %d", i)
		}
	}
	// Restore computed state for the likelihood checks below.
	driveEngine(t, acc, tr, m, rates, ps, false, false)

	// SetTransitionMatrix/GetTransitionMatrix round trip.
	mat := make([]float64, cfg.Dims.MatrixLen())
	for i := range mat {
		mat[i] = rng.Float64()
	}
	if err := acc.SetTransitionMatrix(9, mat); err != nil {
		t.Fatal(err)
	}
	back, err := acc.GetTransitionMatrix(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mat {
		if mat[i] != back[i] {
			t.Fatalf("matrix round trip mismatch at %d", i)
		}
	}

	// SiteLogLikelihoods parity.
	sa, err := acc.SiteLogLikelihoods(root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cpu.SiteLogLikelihoods(root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if math.Abs(sa[i]-sc[i]) > 1e-10 {
			t.Fatalf("site lnL mismatch at %d: %v vs %v", i, sa[i], sc[i])
		}
	}

	// Edge log likelihood parity across the root's joined branch.
	joined := tr.Root.Left.Length + tr.Root.Right.Length
	for _, e := range []engine.Engine{acc, cpu} {
		if err := e.UpdateTransitionMatrices(0, []int{10}, []float64{joined}); err != nil {
			t.Fatal(err)
		}
	}
	la, err := acc.CalculateEdgeLogLikelihoods(tr.Root.Left.Index, tr.Root.Right.Index, 10, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := cpu.CalculateEdgeLogLikelihoods(tr.Root.Left.Index, tr.Root.Right.Index, 10, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(la-lc) > 1e-10*math.Abs(lc) {
		t.Fatalf("edge lnL %v vs %v", la, lc)
	}

	// Edge derivatives parity.
	for _, e := range []engine.Engine{acc, cpu} {
		if err := e.UpdateTransitionDerivatives(0, []int{11}, []int{8}, []float64{joined}); err != nil {
			t.Fatal(err)
		}
	}
	lnA, d1A, d2A, err := acc.CalculateEdgeDerivatives(tr.Root.Left.Index, tr.Root.Right.Index, 10, 11, 8, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	lnC, d1C, d2C, err := cpu.CalculateEdgeDerivatives(tr.Root.Left.Index, tr.Root.Right.Index, 10, 11, 8, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lnA-lnC) > 1e-10*math.Abs(lnC) ||
		math.Abs(d1A-d1C) > 1e-9*(1+math.Abs(d1C)) ||
		math.Abs(d2A-d2C) > 1e-9*(1+math.Abs(d2C)) {
		t.Fatalf("edge derivatives (%v %v %v) vs CPU (%v %v %v)", lnA, d1A, d2A, lnC, d1C, d2C)
	}
}

func TestAccelSurfaceErrors(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(92))
	tr, _ := tree.Random(rng, 4, 0.1)
	dev, _ := device.FindDevice(device.OpenCL, "Radeon R9 Nano")
	cfg := testConfig(tr, 4, 10, 1, false)
	e, err := New(cfg, OpenCLGPU, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetPartials(0, make([]float64, 3)); err == nil {
		t.Error("wrong partials length must error")
	}
	if err := e.SetTransitionMatrix(0, make([]float64, 3)); err == nil {
		t.Error("wrong matrix length must error")
	}
	if err := e.SetTransitionMatrix(99, make([]float64, cfg.Dims.MatrixLen())); err == nil {
		t.Error("bad matrix index must error")
	}
	if _, err := e.SiteLogLikelihoods(0, engine.None); err == nil {
		t.Error("unset root buffer must error")
	}
	if _, _, _, err := e.CalculateEdgeDerivatives(0, 1, 0, 1, engine.None, engine.None); err == nil {
		t.Error("unloaded buffers must error")
	}
	if err := e.UpdateTransitionDerivatives(0, []int{0}, nil, []float64{0.1}); err == nil {
		t.Error("empty eigen slot must error")
	}
	if err := e.UpdateTransitionDerivatives(99, []int{0}, nil, []float64{0.1}); err == nil {
		t.Error("bad eigen slot must error")
	}
}
