package accelimpl

import (
	"math/rand"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// TestAccelMigrateRoundTrip detaches a pattern span from a fully loaded
// accelerator engine and re-attaches it: every migrated device buffer
// (partials, compact tip states, cumulative scale factors, pattern weights)
// must restore bit-identically, verified through the recomputed per-pattern
// likelihoods.
func TestAccelMigrateRoundTrip(t *testing.T) {
	for _, vc := range []variantCase{
		{"CUDA on Quadro P5000", CUDA, "Quadro P5000", device.CUDA},
		{"OpenCL-GPU on Radeon R9 Nano", OpenCLGPU, "Radeon R9 Nano", device.OpenCL},
	} {
		t.Run(vc.name, func(t *testing.T) {
			device.ResetPlatforms()
			rng := rand.New(rand.NewSource(77))
			tr, _ := tree.Random(rng, 6, 0.2)
			m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
			rates, _ := substmodel.GammaRates(0.6, 2)
			align, _ := seqgen.Simulate(rng, tr, m, rates, 200)
			ps := seqgen.CompressPatterns(align)

			dev, err := device.FindDevice(vc.fw, vc.devName)
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(testConfig(tr, 4, ps.PatternCount(), 2, false), vc.variant, dev)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			// Scaled evaluation populates per-op and cumulative scale buffers,
			// so the migration carries every per-pattern buffer kind.
			driveEngine(t, e, tr, m, rates, ps, true, true)
			sched := tr.FullSchedule()
			cum := len(sched.Ops)
			want, err := e.SiteLogLikelihoods(sched.Root, cum)
			if err != nil {
				t.Fatal(err)
			}

			mig := e.(engine.PatternMigrator)
			for _, fromHigh := range []bool{true, false} {
				span := ps.PatternCount() / 3
				blk, err := mig.DetachPatterns(fromHigh, span)
				if err != nil {
					t.Fatalf("DetachPatterns(fromHigh=%v): %v", fromHigh, err)
				}
				if blk.Patterns != span {
					t.Fatalf("block spans %d patterns, want %d", blk.Patterns, span)
				}
				// The shrunk engine must still compute, over its kept range.
				kept, err := e.SiteLogLikelihoods(sched.Root, cum)
				if err != nil {
					t.Fatalf("shrunk engine: %v", err)
				}
				off := 0
				if fromHigh {
					if len(kept) != len(want)-span {
						t.Fatalf("shrunk engine has %d patterns", len(kept))
					}
				} else {
					off = span
				}
				for i := range kept {
					if kept[i] != want[i+off] {
						t.Fatalf("site %d diverged on shrunk engine", i)
					}
				}
				if err := mig.AttachPatterns(fromHigh, blk); err != nil {
					t.Fatalf("AttachPatterns(atHigh=%v): %v", fromHigh, err)
				}
				got, err := e.SiteLogLikelihoods(sched.Root, cum)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("site %d log likelihood %v, want %v after round trip", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestAccelMigrateErrors pins the guard conditions on the device-backed
// migration.
func TestAccelMigrateErrors(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(78))
	tr, _ := tree.Random(rng, 4, 0.2)
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.6, 2)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 60)
	ps := seqgen.CompressPatterns(align)

	dev, err := device.FindDevice(device.CUDA, "Quadro P5000")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig(tr, 4, ps.PatternCount(), 2, false), CUDA, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	driveEngine(t, e, tr, m, rates, ps, true, false)
	mig := e.(engine.PatternMigrator)
	if _, err := mig.DetachPatterns(true, 0); err == nil {
		t.Fatal("DetachPatterns accepted n=0")
	}
	if _, err := mig.DetachPatterns(true, ps.PatternCount()); err == nil {
		t.Fatal("DetachPatterns drained the engine")
	}
	if err := mig.AttachPatterns(true, nil); err == nil {
		t.Fatal("AttachPatterns accepted a nil block")
	}
	blk, err := mig.DetachPatterns(true, 2)
	if err != nil {
		t.Fatal(err)
	}
	blk.Weights = blk.Weights[:1]
	if err := mig.AttachPatterns(true, blk); err == nil {
		t.Fatal("AttachPatterns accepted mismatched weights")
	}
}
