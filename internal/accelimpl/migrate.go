package accelimpl

import (
	"fmt"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
)

// The accelerator engines support the pattern-range migration behind
// multi-device rebalancing: per-pattern device buffers (partials, compact
// tip states, scale factors, the site-likelihood staging buffer) are staged
// through the host, reallocated at the new pattern count, and re-uploaded.
// Every copy goes through the command queue, so the modeled device clock
// charges the real host↔device traffic a rebalance costs — the reason the
// rebalancer only migrates when the predicted steady-state win exceeds its
// hysteresis threshold.

// DetachPatterns removes n patterns from one end of the engine's range and
// returns their state; the engine keeps at least one pattern.
func (e *Engine[T]) DetachPatterns(fromHigh bool, n int) (*engine.PatternBlock, error) {
	if e.closed {
		return nil, fmt.Errorf("accelimpl: engine is closed")
	}
	d := e.cfg.Dims
	p := d.PatternCount
	if n <= 0 || n >= p {
		return nil, fmt.Errorf("accelimpl: cannot detach %d of %d patterns", n, p)
	}
	lo, hi := p-n, p
	keepLo, keepHi := 0, lo
	if !fromHigh {
		lo, hi = 0, n
		keepLo, keepHi = n, p
	}
	keep := keepHi - keepLo

	blk := &engine.PatternBlock{
		Patterns:  n,
		TipStates: make([][]int32, len(e.tipStates)),
		Partials:  make([][]float64, len(e.partials)),
		Weights:   append([]float64(nil), e.patWts[lo:hi]...),
		Scale:     make([][]float64, len(e.scale)),
	}

	for t, buf := range e.tipStates {
		if buf == nil {
			continue
		}
		host := make([]int32, p)
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return nil, err
		}
		blk.TipStates[t] = append([]int32(nil), host[lo:hi]...)
		nb, err := reallocUpload(e, buf, host[keepLo:keepHi])
		if err != nil {
			return nil, err
		}
		e.tipStates[t] = nb
	}
	for b, buf := range e.partials {
		if buf == nil {
			continue
		}
		host := make([]T, d.PartialsLen())
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return nil, err
		}
		out := make([]float64, d.CategoryCount*n*d.StateCount)
		kept := make([]T, d.CategoryCount*keep*d.StateCount)
		for c := 0; c < d.CategoryCount; c++ {
			src := host[(c*p+lo)*d.StateCount : (c*p+hi)*d.StateCount]
			for i, v := range src {
				out[c*n*d.StateCount+i] = float64(v)
			}
			copy(kept[c*keep*d.StateCount:], host[(c*p+keepLo)*d.StateCount:(c*p+keepHi)*d.StateCount])
		}
		blk.Partials[b] = out
		nb, err := reallocUpload(e, buf, kept)
		if err != nil {
			return nil, err
		}
		e.partials[b] = nb
	}
	for b, buf := range e.scale {
		if buf == nil {
			continue
		}
		host := make([]float64, p)
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return nil, err
		}
		blk.Scale[b] = append([]float64(nil), host[lo:hi]...)
		nb, err := reallocUpload(e, buf, host[keepLo:keepHi])
		if err != nil {
			return nil, err
		}
		e.scale[b] = nb
	}
	if err := e.resizeSiteBuf(keep); err != nil {
		return nil, err
	}
	e.patWts = append([]float64(nil), e.patWts[keepLo:keepHi]...)
	e.cfg.Dims.PatternCount = keep
	return blk, nil
}

// AttachPatterns inserts a detached block at one end of the engine's range.
func (e *Engine[T]) AttachPatterns(atHigh bool, blk *engine.PatternBlock) error {
	if e.closed {
		return fmt.Errorf("accelimpl: engine is closed")
	}
	if blk == nil || blk.Patterns <= 0 {
		return fmt.Errorf("accelimpl: cannot attach an empty pattern block")
	}
	if len(blk.TipStates) != len(e.tipStates) || len(blk.Partials) != len(e.partials) || len(blk.Scale) != len(e.scale) {
		return fmt.Errorf("accelimpl: pattern block geometry (%d/%d/%d buffers) does not match engine (%d/%d/%d)",
			len(blk.TipStates), len(blk.Partials), len(blk.Scale),
			len(e.tipStates), len(e.partials), len(e.scale))
	}
	d := e.cfg.Dims
	p, n := d.PatternCount, blk.Patterns
	if len(blk.Weights) != n {
		return fmt.Errorf("accelimpl: pattern block carries %d weights for %d patterns", len(blk.Weights), n)
	}
	for t := range e.tipStates {
		if (e.tipStates[t] == nil) != (blk.TipStates[t] == nil) {
			return fmt.Errorf("accelimpl: tip-state buffer %d occupancy mismatch in pattern block", t)
		}
	}
	for b := range e.partials {
		if (e.partials[b] == nil) != (blk.Partials[b] == nil) {
			return fmt.Errorf("accelimpl: partials buffer %d occupancy mismatch in pattern block", b)
		}
	}
	for b := range e.scale {
		if (e.scale[b] == nil) != (blk.Scale[b] == nil) {
			return fmt.Errorf("accelimpl: scale buffer %d occupancy mismatch in pattern block", b)
		}
	}

	for t, buf := range e.tipStates {
		if buf == nil {
			continue
		}
		host := make([]int32, p)
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return err
		}
		merged := make([]int32, 0, p+n)
		if atHigh {
			merged = append(append(merged, host...), blk.TipStates[t]...)
		} else {
			merged = append(append(merged, blk.TipStates[t]...), host...)
		}
		nb, err := reallocUpload(e, buf, merged)
		if err != nil {
			return err
		}
		e.tipStates[t] = nb
	}
	for b, buf := range e.partials {
		if buf == nil {
			continue
		}
		host := make([]T, d.PartialsLen())
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return err
		}
		merged := make([]T, d.CategoryCount*(p+n)*d.StateCount)
		for c := 0; c < d.CategoryCount; c++ {
			dst := merged[c*(p+n)*d.StateCount : (c+1)*(p+n)*d.StateCount]
			old := host[c*p*d.StateCount : (c+1)*p*d.StateCount]
			add := blk.Partials[b][c*n*d.StateCount : (c+1)*n*d.StateCount]
			if atHigh {
				copy(dst, old)
				for i, v := range add {
					dst[len(old)+i] = T(v)
				}
			} else {
				for i, v := range add {
					dst[i] = T(v)
				}
				copy(dst[len(add):], old)
			}
		}
		nb, err := reallocUpload(e, buf, merged)
		if err != nil {
			return err
		}
		e.partials[b] = nb
	}
	for b, buf := range e.scale {
		if buf == nil {
			continue
		}
		host := make([]float64, p)
		if err := device.CopyFromDevice(e.q, host, buf); err != nil {
			return err
		}
		merged := make([]float64, 0, p+n)
		if atHigh {
			merged = append(append(merged, host...), blk.Scale[b]...)
		} else {
			merged = append(append(merged, blk.Scale[b]...), host...)
		}
		nb, err := reallocUpload(e, buf, merged)
		if err != nil {
			return err
		}
		e.scale[b] = nb
	}
	if err := e.resizeSiteBuf(p + n); err != nil {
		return err
	}
	merged := make([]float64, 0, p+n)
	if atHigh {
		merged = append(append(merged, e.patWts...), blk.Weights...)
	} else {
		merged = append(append(merged, blk.Weights...), e.patWts...)
	}
	e.patWts = merged
	e.cfg.Dims.PatternCount = p + n
	return nil
}

// reallocUpload frees a device buffer and replaces it with a fresh
// allocation holding the given host data, charging the upload to the queue.
func reallocUpload[T device.Elem, U kernels.Real](e *Engine[U], old *device.Buffer[T], host []T) (*device.Buffer[T], error) {
	if err := old.Free(); err != nil {
		return nil, err
	}
	nb, err := device.Alloc[T](e.dev, len(host))
	if err != nil {
		return nil, err
	}
	if err := device.CopyToDevice(e.q, nb, host); err != nil {
		nb.Free()
		return nil, err
	}
	return nb, nil
}

// resizeSiteBuf reallocates the site-likelihood staging buffer for a new
// pattern count; its contents are produced fresh by every integration call.
func (e *Engine[T]) resizeSiteBuf(patterns int) error {
	if err := e.siteBuf.Free(); err != nil {
		return err
	}
	nb, err := device.Alloc[float64](e.dev, patterns)
	if err != nil {
		return err
	}
	e.siteBuf = nb
	return nil
}

var _ engine.PatternMigrator = (*Engine[float64])(nil)
var _ engine.PatternMigrator = (*Engine[float32])(nil)
