package tree

// Op describes one partial-likelihood update in library buffer indices: the
// partials at Dest are computed from the two children's partials (or compact
// tip states) combined with their branch transition matrices. The field
// layout mirrors the BEAGLE operation structure.
type Op struct {
	Dest      int // destination partials buffer
	Child1    int // first child partials (or tip states) buffer
	Child1Mat int // transition matrix index for the first child's branch
	Child2    int
	Child2Mat int
}

// MatrixUpdate pairs a transition-matrix buffer index with the branch length
// it must be computed for. By convention matrix i belongs to the branch above
// node i.
type MatrixUpdate struct {
	Matrix int
	Length float64
}

// Schedule is everything a client needs to evaluate one tree with the
// library: which transition matrices to (re)compute, the post-order list of
// partial updates, and the root buffer to integrate.
type Schedule struct {
	Matrices []MatrixUpdate
	Ops      []Op
	Root     int
}

// FullSchedule builds the complete evaluation schedule for the tree: a matrix
// update for every non-root branch and a partials operation for every
// internal node in post-order (every child is computed before its parent).
func (t *Tree) FullSchedule() *Schedule {
	s := &Schedule{Root: t.Root.Index}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsTip() {
			return
		}
		walk(n.Left)
		walk(n.Right)
		s.Ops = append(s.Ops, Op{
			Dest:      n.Index,
			Child1:    n.Left.Index,
			Child1Mat: n.Left.Index,
			Child2:    n.Right.Index,
			Child2Mat: n.Right.Index,
		})
	}
	walk(t.Root)
	for _, n := range t.nodes {
		if n != t.Root {
			s.Matrices = append(s.Matrices, MatrixUpdate{Matrix: n.Index, Length: n.Length})
		}
	}
	return s
}

// DirtySchedule builds the minimal schedule to re-evaluate the tree after the
// given nodes were modified (topology or branch length): matrices for the
// dirty branches and partial updates for every ancestor of a dirty node, in
// post-order. The caller is responsible for having valid partials elsewhere.
func (t *Tree) DirtySchedule(dirty []*Node) *Schedule {
	s := &Schedule{Root: t.Root.Index}
	needsUpdate := make(map[int]bool)
	for _, d := range dirty {
		if d != t.Root {
			s.Matrices = append(s.Matrices, MatrixUpdate{Matrix: d.Index, Length: d.Length})
		}
		for a := d; a != nil; a = a.Parent {
			if !a.IsTip() {
				needsUpdate[a.Index] = true
			}
		}
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsTip() {
			return
		}
		walk(n.Left)
		walk(n.Right)
		if needsUpdate[n.Index] {
			s.Ops = append(s.Ops, Op{
				Dest:      n.Index,
				Child1:    n.Left.Index,
				Child1Mat: n.Left.Index,
				Child2:    n.Right.Index,
				Child2Mat: n.Right.Index,
			})
		}
	}
	walk(t.Root)
	return s
}

// OpLevels groups operations into dependency levels: all operations within a
// level are independent of each other (their children are tips or results of
// earlier levels), so a level can be computed concurrently. This is the
// structure the paper's "futures" threading approach exploits.
func OpLevels(ops []Op) [][]Op {
	level := make(map[int]int) // dest buffer -> level producing it
	var out [][]Op
	for _, op := range ops {
		l := 0
		if dl, ok := level[op.Child1]; ok && dl+1 > l {
			l = dl + 1
		}
		if dl, ok := level[op.Child2]; ok && dl+1 > l {
			l = dl + 1
		}
		level[op.Dest] = l
		for len(out) <= l {
			out = append(out, nil)
		}
		out[l] = append(out[l], op)
	}
	return out
}
