package tree

import (
	"strings"
	"testing"
)

// FuzzParseNewick drives the recursive-descent parser with arbitrary input.
// Any input may be rejected, but an accepted input must yield a well-formed
// binary tree whose Newick rendering is a stable fixed point: render → parse
// → render reproduces the same string with the same tip count.
func FuzzParseNewick(f *testing.F) {
	seeds := []string{
		"(A:0.1,B:0.2);",
		"((A:0.1,B:0.2):0.05,C:0.3);",
		"((A,B),(C,D));",
		"(A:1e-3,(B:0.5,C:+0.25):2E2);",
		" ( A : 0.1 , B : 0.2 ) ; ",
		"((((((t1:0.1,t2:0.1):0.1,t3:0.1):0.1,t4:0.1):0.1,t5:0.1):0.1,t6:0.1):0.1,t7:0.1);",
		"(A,B)label:0.5;",
		"(A:0.1,B:-0.2);",
		"(,);",
		"(A:0.1,B:0.2",
		"))((",
		"(A:abc,B:0.2);",
		"(A:1e999,B:1);",
		strings.Repeat("(", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseNewick(s)
		if err != nil {
			return // rejected input: the only requirement is not crashing
		}
		if tr.TipCount < 2 {
			t.Fatalf("accepted tree with %d tips from %q", tr.TipCount, s)
		}
		out := tr.Newick()
		tr2, err := ParseNewick(out)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse: %q -> %q: %v", s, out, err)
		}
		if tr2.TipCount != tr.TipCount {
			t.Fatalf("tip count changed across round trip: %d -> %d (input %q)", tr.TipCount, tr2.TipCount, s)
		}
		if out2 := tr2.Newick(); out2 != out {
			t.Fatalf("rendering is not a fixed point: %q -> %q (input %q)", out, out2, s)
		}
	})
}

// TestParseNewickDepthLimit pins the recursion guard: pathological nesting
// must fail fast with an error instead of growing the stack without bound.
func TestParseNewickDepthLimit(t *testing.T) {
	if _, err := ParseNewick(strings.Repeat("(", maxNewickDepth+50)); err == nil ||
		!strings.Contains(err.Error(), "nesting exceeds") {
		t.Fatalf("deep nesting not rejected by the depth guard: %v", err)
	}

	// A deep but legal caterpillar tree below the limit must still parse.
	var b strings.Builder
	const depth = 2000
	b.WriteString(strings.Repeat("(", depth))
	b.WriteString("t0:1")
	for i := 1; i <= depth; i++ {
		b.WriteString(",x:1):1")
	}
	b.WriteByte(';')
	tr, err := ParseNewick(b.String())
	if err != nil {
		t.Fatalf("legal deep tree rejected: %v", err)
	}
	if tr.TipCount != depth+1 {
		t.Fatalf("deep tree tip count = %d, want %d", tr.TipCount, depth+1)
	}
}
