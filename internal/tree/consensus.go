package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// MajorityRuleConsensus builds the majority-rule consensus topology from
// posterior split frequencies (as produced by the MC3 sampler's
// SplitSupport), returning it as a Newick string with internal nodes
// labelled by their support — the analogue of MrBayes's sumt consensus
// tree. Splits with frequency ≥ minFreq are included; minFreq is clamped to
// be strictly greater than 0.5, which guarantees all retained splits are
// pairwise compatible. The consensus may contain multifurcations where no
// majority split resolves a region.
func MajorityRuleConsensus(tipNames []string, support map[string]float64, minFreq float64) (string, error) {
	if len(tipNames) < 2 {
		return "", errors.New("tree: consensus needs at least two tips")
	}
	if minFreq <= 0.5 {
		minFreq = 0.5000001
	}
	names := append([]string(nil), tipNames...)
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return "", fmt.Errorf("tree: duplicate tip name %q", names[i])
		}
	}
	all := make(map[string]bool, len(names))
	for _, n := range names {
		all[n] = true
	}
	ref := names[0] // consensus is rooted at the reference tip's edge

	// Convert each retained split into a clade: the side not containing the
	// reference tip.
	type clade struct {
		tips    map[string]bool
		support float64
	}
	var clades []clade
	for key, freq := range support {
		if freq < minFreq {
			continue
		}
		side := strings.Split(key, ",")
		inSide := make(map[string]bool, len(side))
		hasRef := false
		for _, n := range side {
			if !all[n] {
				return "", fmt.Errorf("tree: split tip %q not in the tip set", n)
			}
			inSide[n] = true
			if n == ref {
				hasRef = true
			}
		}
		tips := make(map[string]bool)
		if hasRef {
			for _, n := range names {
				if !inSide[n] {
					tips[n] = true
				}
			}
		} else {
			tips = inSide
		}
		if len(tips) < 2 || len(tips) >= len(names) {
			continue // trivial after re-rooting
		}
		clades = append(clades, clade{tips: tips, support: freq})
	}
	// Majority splits are compatible, but guard against misuse with a
	// pairwise check (nested or disjoint).
	for i := range clades {
		for j := i + 1; j < len(clades); j++ {
			if !compatibleClades(clades[i].tips, clades[j].tips) {
				return "", errors.New("tree: incompatible splits (support threshold must exceed 0.5)")
			}
		}
	}

	// Nest clades: each under the smallest strictly containing clade.
	type cnode struct {
		tips     map[string]bool
		support  float64
		children []*cnode
	}
	root := &cnode{tips: all, support: 1}
	// Insert larger clades first so parents exist before children.
	sort.Slice(clades, func(i, j int) bool { return len(clades[i].tips) > len(clades[j].tips) })
	for _, c := range clades {
		n := &cnode{tips: c.tips, support: c.support}
		parent := root
		for {
			descended := false
			for _, ch := range parent.children {
				if containsAll(ch.tips, c.tips) {
					parent = ch
					descended = true
					break
				}
			}
			if !descended {
				break
			}
		}
		// Adopt existing children that belong inside the new clade.
		kept := parent.children[:0]
		for _, ch := range parent.children {
			if containsAll(c.tips, ch.tips) {
				n.children = append(n.children, ch)
			} else {
				kept = append(kept, ch)
			}
		}
		parent.children = append(kept, n)
	}

	// Render: tips attach to the smallest clade containing them.
	var render func(n *cnode) string
	render = func(n *cnode) string {
		covered := make(map[string]bool)
		parts := make([]string, 0, len(n.children)+2)
		childOf := append([]*cnode(nil), n.children...)
		sort.Slice(childOf, func(i, j int) bool {
			return smallestTip(childOf[i].tips) < smallestTip(childOf[j].tips)
		})
		for _, ch := range childOf {
			parts = append(parts, render(ch))
			for tip := range ch.tips {
				covered[tip] = true
			}
		}
		for _, tip := range names {
			if n.tips[tip] && !covered[tip] {
				parts = append(parts, tip)
			}
		}
		body := "(" + strings.Join(parts, ",") + ")"
		if n == root {
			return body
		}
		return fmt.Sprintf("%s%.2f", body, n.support)
	}
	return render(root) + ";", nil
}

// compatibleClades reports whether two tip sets are nested or disjoint.
func compatibleClades(a, b map[string]bool) bool {
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	return inter == 0 || inter == len(a) || inter == len(b)
}

// containsAll reports a ⊇ b.
func containsAll(a, b map[string]bool) bool {
	if len(b) > len(a) {
		return false
	}
	for t := range b {
		if !a[t] {
			return false
		}
	}
	return true
}

func smallestTip(tips map[string]bool) string {
	best := ""
	for t := range tips {
		if best == "" || t < best {
			best = t
		}
	}
	return best
}
