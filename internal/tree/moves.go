package tree

import (
	"errors"
	"math"
	"math/rand"
)

// ScaleBranch multiplies one uniformly chosen non-root branch by
// exp(delta·(u−0.5)) and returns the affected node and the log of the
// Hastings ratio for the proposal (the log of the multiplier). This is the
// standard branch-length "multiplier" move of Bayesian phylogenetics.
func (t *Tree) ScaleBranch(rng *rand.Rand, delta float64) (*Node, float64) {
	n := t.randomNonRoot(rng)
	m := math.Exp(delta * (rng.Float64() - 0.5))
	n.Length *= m
	return n, math.Log(m)
}

// randomNonRoot returns a uniformly chosen node other than the root.
func (t *Tree) randomNonRoot(rng *rand.Rand) *Node {
	for {
		n := t.nodes[rng.Intn(len(t.nodes))]
		if n != t.Root {
			return n
		}
	}
}

// NNI performs a nearest-neighbor interchange around a uniformly chosen
// internal edge: one child of the chosen internal node is swapped with its
// "uncle" (the node's sibling). It returns the two swapped nodes. The move is
// its own inverse and symmetric, so its Hastings ratio is 1. It returns an
// error for trees too small to have an internal edge.
func (t *Tree) NNI(rng *rand.Rand) (swappedChild, swappedUncle *Node, err error) {
	// Collect internal non-root nodes: each corresponds to an internal edge
	// (the edge to its parent).
	var candidates []*Node
	for _, n := range t.nodes {
		if !n.IsTip() && n != t.Root {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil, nil, errors.New("tree: no internal edge for NNI")
	}
	n := candidates[rng.Intn(len(candidates))]
	parent := n.Parent

	var uncle *Node
	if parent.Left == n {
		uncle = parent.Right
	} else {
		uncle = parent.Left
	}
	var child *Node
	if rng.Intn(2) == 0 {
		child = n.Left
	} else {
		child = n.Right
	}

	// Swap child and uncle.
	if n.Left == child {
		n.Left = uncle
	} else {
		n.Right = uncle
	}
	if parent.Left == uncle {
		parent.Left = child
	} else {
		parent.Right = child
	}
	child.Parent = parent
	uncle.Parent = n
	return child, uncle, nil
}
