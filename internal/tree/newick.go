package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// Newick renders the tree in Newick format with branch lengths.
func (t *Tree) Newick() string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsTip() {
			b.WriteString(n.Name)
		} else {
			b.WriteByte('(')
			walk(n.Left)
			b.WriteByte(',')
			walk(n.Right)
			b.WriteByte(')')
		}
		if n.Parent != nil {
			fmt.Fprintf(&b, ":%g", n.Length)
		}
	}
	walk(t.Root)
	b.WriteByte(';')
	return b.String()
}

// maxNewickDepth bounds parser recursion. Biological trees are no deeper
// than their tip count (a few thousand at the extreme), while adversarial
// inputs — a megabyte of '(' — would otherwise drive the recursive-descent
// parser to gigabyte stack growth before any syntax error surfaces.
const maxNewickDepth = 10000

type newickParser struct {
	s     string
	pos   int
	depth int
}

// ParseNewick parses a rooted, strictly binary Newick tree with branch
// lengths (lengths default to 0 when omitted) and returns a tree with
// buffer indices assigned: tips in left-to-right order, internal nodes in
// post-order.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{s: strings.TrimSpace(s)}
	root, tips, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("tree: trailing characters at offset %d in Newick string", p.pos)
	}
	if tips < 2 {
		return nil, fmt.Errorf("tree: Newick tree has %d tips, need at least 2", tips)
	}
	t := &Tree{Root: root, TipCount: tips}
	t.Renumber()
	return t, nil
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *newickParser) parseNode() (*Node, int, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxNewickDepth {
		return nil, 0, fmt.Errorf("tree: Newick nesting exceeds %d levels", maxNewickDepth)
	}
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, 0, fmt.Errorf("tree: unexpected end of Newick string")
	}
	n := &Node{}
	tips := 0
	if p.s[p.pos] == '(' {
		p.pos++ // consume '('
		left, lt, err := p.parseNode()
		if err != nil {
			return nil, 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ',' {
			return nil, 0, fmt.Errorf("tree: expected ',' at offset %d (only binary trees are supported)", p.pos)
		}
		p.pos++ // consume ','
		right, rt, err := p.parseNode()
		if err != nil {
			return nil, 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return nil, 0, fmt.Errorf("tree: expected ')' at offset %d", p.pos)
		}
		p.pos++ // consume ')'
		n.Left, n.Right = left, right
		left.Parent, right.Parent = n, n
		tips = lt + rt
		// Optional internal node label, ignored.
		p.readName()
	} else {
		name := p.readName()
		if name == "" {
			return nil, 0, fmt.Errorf("tree: expected tip name at offset %d", p.pos)
		}
		n.Name = name
		tips = 1
	}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ':' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isDigit(p.s[p.pos]) || p.s[p.pos] == '.' || p.s[p.pos] == '-' ||
			p.s[p.pos] == '+' || p.s[p.pos] == 'e' || p.s[p.pos] == 'E') {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("tree: bad branch length at offset %d: %v", start, err)
		}
		n.Length = v
	}
	return n, tips, nil
}

func (p *newickParser) readName() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ',' || c == ')' || c == '(' || c == ':' || c == ';' || c == ' ' {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
