// Package tree provides the phylogenetic tree substrate that client programs
// of the BEAGLE-style library need: rooted binary trees, Newick input and
// output, random tree generation, post-order operation schedules matching the
// library's flexibly indexed buffers, and the topology and branch-length
// moves used by MCMC samplers.
//
// The library itself deliberately has no tree type (see the paper's §IV-B);
// translating a tree into buffer indices and operation lists is the client's
// job, and this package is that client-side machinery.
package tree

import (
	"errors"
	"fmt"
	"math/rand"
)

// Node is a node of a rooted binary phylogenetic tree.
type Node struct {
	// Index identifies the node's partials buffer: tips are numbered
	// 0..TipCount-1 and internal nodes TipCount..2·TipCount-2, with the
	// root holding the largest index after Renumber.
	Index  int
	Name   string  // tip label, empty for internal nodes
	Length float64 // branch length to the parent; 0 at the root
	Parent *Node
	Left   *Node
	Right  *Node
}

// IsTip reports whether the node is a leaf.
func (n *Node) IsTip() bool { return n.Left == nil && n.Right == nil }

// Tree is a rooted binary phylogenetic tree.
type Tree struct {
	Root     *Node
	TipCount int
	nodes    []*Node // all nodes indexed by Node.Index; rebuilt by Renumber
}

// NodeCount returns the total number of nodes (2·TipCount − 1).
func (t *Tree) NodeCount() int { return 2*t.TipCount - 1 }

// Node returns the node with the given buffer index.
func (t *Tree) Node(index int) *Node { return t.nodes[index] }

// Nodes returns all nodes indexed by buffer index.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Tips returns the leaf nodes in index order.
func (t *Tree) Tips() []*Node { return t.nodes[:t.TipCount] }

// Validate checks the structural invariants of a rooted binary tree.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return errors.New("tree: nil root")
	}
	seen := make(map[int]bool)
	tips := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return errors.New("tree: nil node")
		}
		if seen[n.Index] {
			return fmt.Errorf("tree: duplicate node index %d", n.Index)
		}
		seen[n.Index] = true
		if (n.Left == nil) != (n.Right == nil) {
			return fmt.Errorf("tree: node %d has exactly one child", n.Index)
		}
		if n.IsTip() {
			tips++
			return nil
		}
		if n.Left.Parent != n || n.Right.Parent != n {
			return fmt.Errorf("tree: broken parent link under node %d", n.Index)
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if tips != t.TipCount {
		return fmt.Errorf("tree: found %d tips, expected %d", tips, t.TipCount)
	}
	if len(seen) != t.NodeCount() {
		return fmt.Errorf("tree: found %d nodes, expected %d", len(seen), t.NodeCount())
	}
	return nil
}

// Renumber reassigns buffer indices: tips keep 0..TipCount-1 in their
// current index order (or are assigned in discovery order when unnumbered),
// and internal nodes are assigned TipCount.. in post-order, so every internal
// node has a higher index than both children and the root has the highest
// index. It also rebuilds the index → node table.
func (t *Tree) Renumber() {
	tipIdx := 0
	internalIdx := t.TipCount
	t.nodes = make([]*Node, t.NodeCount())
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsTip() {
			n.Index = tipIdx
			tipIdx++
			t.nodes[n.Index] = n
			return
		}
		walk(n.Left)
		walk(n.Right)
		n.Index = internalIdx
		internalIdx++
		t.nodes[n.Index] = n
	}
	walk(t.Root)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	var cp func(n, parent *Node) *Node
	cp = func(n, parent *Node) *Node {
		if n == nil {
			return nil
		}
		m := &Node{Index: n.Index, Name: n.Name, Length: n.Length, Parent: parent}
		m.Left = cp(n.Left, m)
		m.Right = cp(n.Right, m)
		return m
	}
	out := &Tree{Root: cp(t.Root, nil), TipCount: t.TipCount}
	out.rebuildIndex()
	return out
}

// rebuildIndex rebuilds the index → node table without changing indices.
func (t *Tree) rebuildIndex() {
	t.nodes = make([]*Node, t.NodeCount())
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		t.nodes[n.Index] = n
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

// TotalLength returns the sum of all branch lengths.
func (t *Tree) TotalLength() float64 {
	var sum float64
	for _, n := range t.nodes {
		if n != t.Root {
			sum += n.Length
		}
	}
	return sum
}

// Random generates a random rooted binary tree over tipCount tips named
// "t0".."tN-1", by iteratively joining two random lineages (a Yule-style
// construction). Branch lengths are exponential with the given mean.
func Random(rng *rand.Rand, tipCount int, meanBranchLength float64) (*Tree, error) {
	if tipCount < 2 {
		return nil, errors.New("tree: need at least two tips")
	}
	if meanBranchLength <= 0 {
		return nil, errors.New("tree: mean branch length must be positive")
	}
	lineages := make([]*Node, tipCount)
	for i := range lineages {
		lineages[i] = &Node{
			Name:   fmt.Sprintf("t%d", i),
			Length: rng.ExpFloat64() * meanBranchLength,
		}
	}
	for len(lineages) > 1 {
		i := rng.Intn(len(lineages))
		a := lineages[i]
		lineages[i] = lineages[len(lineages)-1]
		lineages = lineages[:len(lineages)-1]
		j := rng.Intn(len(lineages))
		b := lineages[j]
		parent := &Node{
			Left:   a,
			Right:  b,
			Length: rng.ExpFloat64() * meanBranchLength,
		}
		a.Parent = parent
		b.Parent = parent
		lineages[j] = parent
	}
	t := &Tree{Root: lineages[0], TipCount: tipCount}
	t.Root.Length = 0
	t.Renumber()
	return t, nil
}
