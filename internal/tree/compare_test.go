package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRobinsonFouldsIdentical(t *testing.T) {
	a, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := ParseNewick("((d:2,c:9):1,(b:3,a:4):1);") // same topology, relabeled order/lengths
	d, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("identical topologies have RF %d", d)
	}
}

func TestRobinsonFouldsDifferent(t *testing.T) {
	a, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);") // split ab|cd
	b, _ := ParseNewick("((a:1,c:1):1,(b:1,d:1):1);") // split ac|bd
	d, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("disjoint 4-tip topologies should have RF 2, got %d", d)
	}
	if MaxRobinsonFoulds(4) != 2 {
		t.Fatalf("max RF for 4 tips is %d", MaxRobinsonFoulds(4))
	}
}

func TestRobinsonFouldsSelfZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, 4+rng.Intn(20), 0.1)
		if err != nil {
			return false
		}
		d, err := RobinsonFoulds(tr, tr.Clone())
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFouldsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tips := 4 + rng.Intn(16)
		a, err := Random(rng, tips, 0.1)
		if err != nil {
			return false
		}
		b, err := Random(rng, tips, 0.1)
		if err != nil {
			return false
		}
		d, err := RobinsonFoulds(a, b)
		if err != nil {
			return false
		}
		// Symmetric and bounded.
		d2, err := RobinsonFoulds(b, a)
		return err == nil && d == d2 && d >= 0 && d <= MaxRobinsonFoulds(tips)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFoulsNNIChangesAtMostTwo(t *testing.T) {
	// One NNI changes exactly one split, so RF distance ≤ 2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, 5+rng.Intn(15), 0.1)
		if err != nil {
			return false
		}
		moved := tr.Clone()
		if _, _, err := moved.NNI(rng); err != nil {
			return false
		}
		d, err := RobinsonFoulds(tr, moved)
		return err == nil && d <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFouldsErrors(t *testing.T) {
	a, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := ParseNewick("(x:1,(y:1,z:1):1);")
	if _, err := RobinsonFoulds(a, b); err == nil {
		t.Fatal("tip count mismatch must error")
	}
	c, _ := ParseNewick("((a:1,b:1):1,(c:1,x:1):1);")
	if _, err := RobinsonFoulds(a, c); err == nil {
		t.Fatal("tip name mismatch must error")
	}
}
