package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Splits returns the set of non-trivial bipartitions (splits) the tree's
// internal edges induce on the tip-name set, each encoded as the sorted,
// comma-joined smaller side (ties broken lexicographically). Splits are the
// standard topology-comparison currency: two trees share a split exactly
// when both contain an edge separating the same two tip sets, and posterior
// split frequencies are the clade supports Bayesian programs report.
func (t *Tree) Splits() (map[string]bool, error) {
	all := make([]string, 0, t.TipCount)
	for _, tip := range t.Tips() {
		if tip.Name == "" {
			return nil, errors.New("tree: bipartitions require named tips")
		}
		all = append(all, tip.Name)
	}
	sort.Strings(all)
	total := len(all)

	splits := make(map[string]bool)
	var walk func(n *Node) []string
	walk = func(n *Node) []string {
		if n.IsTip() {
			return []string{n.Name}
		}
		names := append(walk(n.Left), walk(n.Right)...)
		// The edge above n (if not the root and not trivial) splits names
		// from the rest.
		if n.Parent != nil && len(names) >= 2 && total-len(names) >= 2 {
			side := append([]string(nil), names...)
			sort.Strings(side)
			other := complement(all, side)
			key := strings.Join(side, ",")
			if len(other) < len(side) || (len(other) == len(side) && strings.Join(other, ",") < key) {
				key = strings.Join(other, ",")
			}
			splits[key] = true
		}
		return names
	}
	walk(t.Root)
	return splits, nil
}

// complement returns the sorted elements of all not present in side (both
// sorted).
func complement(all, side []string) []string {
	out := make([]string, 0, len(all)-len(side))
	i := 0
	for _, a := range all {
		if i < len(side) && side[i] == a {
			i++
			continue
		}
		out = append(out, a)
	}
	return out
}

// RobinsonFoulds returns the Robinson–Foulds distance between two trees over
// the same tip-name set: the number of bipartitions present in exactly one
// of the trees. Zero means identical unrooted topologies.
func RobinsonFoulds(a, b *Tree) (int, error) {
	if a.TipCount != b.TipCount {
		return 0, fmt.Errorf("tree: tip counts differ (%d vs %d)", a.TipCount, b.TipCount)
	}
	namesA := map[string]bool{}
	for _, tip := range a.Tips() {
		namesA[tip.Name] = true
	}
	for _, tip := range b.Tips() {
		if !namesA[tip.Name] {
			return 0, fmt.Errorf("tree: tip %q missing from the first tree", tip.Name)
		}
	}
	sa, err := a.Splits()
	if err != nil {
		return 0, err
	}
	sb, err := b.Splits()
	if err != nil {
		return 0, err
	}
	d := 0
	for s := range sa {
		if !sb[s] {
			d++
		}
	}
	for s := range sb {
		if !sa[s] {
			d++
		}
	}
	return d, nil
}

// MaxRobinsonFoulds returns the maximum possible RF distance for trees with
// the given number of tips: 2·(n−3) non-trivial splits across two fully
// resolved unrooted topologies.
func MaxRobinsonFoulds(tips int) int {
	if tips < 4 {
		return 0
	}
	return 2 * (tips - 3)
}
