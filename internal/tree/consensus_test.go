package tree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestConsensusFromSingleTopology(t *testing.T) {
	// All splits at frequency 1 reproduce the source topology.
	src, err := ParseNewick("((a:1,b:1):1,((c:1,d:1):1,e:1):1);")
	if err != nil {
		t.Fatal(err)
	}
	splits, err := src.Splits()
	if err != nil {
		t.Fatal(err)
	}
	support := map[string]float64{}
	for s := range splits {
		support[s] = 1.0
	}
	names := []string{"a", "b", "c", "d", "e"}
	nwk, err := MajorityRuleConsensus(names, support, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Rooted at the reference tip "a", the split a,b|c,d,e renders as the
	// clade (c,d,e) and c,d|a,b,e as (c,d), both with support 1.
	if !strings.Contains(nwk, "(c,d)1.00") {
		t.Errorf("consensus %q missing (c,d) clade", nwk)
	}
	if !strings.Contains(nwk, "((c,d)1.00,e)1.00") {
		t.Errorf("consensus %q missing nested (c,d,e) clade", nwk)
	}
	if !strings.HasSuffix(nwk, ";") {
		t.Errorf("consensus %q not Newick-terminated", nwk)
	}
}

func TestConsensusDropsMinoritySplits(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	support := map[string]float64{
		"a,b": 0.9,  // majority: kept
		"a,c": 0.45, // minority (conflicts with a,b): dropped
	}
	nwk, err := MajorityRuleConsensus(names, support, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Rooted at "a", the majority split a,b|c,d renders as the (c,d) clade.
	if !strings.Contains(nwk, "(c,d)0.90") {
		t.Errorf("consensus %q missing majority clade", nwk)
	}
	// The minority split a,c|b,d would render as (b,d); it must be absent.
	if strings.Contains(nwk, "(b,d)") {
		t.Errorf("consensus %q contains minority clade", nwk)
	}
}

func TestConsensusMultifurcationWhenUnresolved(t *testing.T) {
	// No split reaches the threshold: a star tree.
	names := []string{"a", "b", "c", "d"}
	nwk, err := MajorityRuleConsensus(names, map[string]float64{"a,b": 0.3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if nwk != "(a,b,c,d);" {
		t.Fatalf("expected star tree, got %q", nwk)
	}
}

func TestConsensusRejectsBadInput(t *testing.T) {
	if _, err := MajorityRuleConsensus([]string{"a"}, nil, 0.6); err == nil {
		t.Error("single tip must error")
	}
	if _, err := MajorityRuleConsensus([]string{"a", "a", "b"}, nil, 0.6); err == nil {
		t.Error("duplicate names must error")
	}
	if _, err := MajorityRuleConsensus([]string{"a", "b", "c", "d"},
		map[string]float64{"a,x": 0.9}, 0.6); err == nil {
		t.Error("unknown tip in split must error")
	}
	// Incompatible splits above 0.5 cannot both exist in honest data, but
	// the guard must catch hand-built misuse at a lowered threshold.
	if _, err := MajorityRuleConsensus([]string{"a", "b", "c", "d"},
		map[string]float64{"a,b": 0.9, "b,c": 0.9}, 0.6); err == nil {
		t.Error("incompatible splits must error")
	}
}

func TestConsensusAgreesWithSourceTreeProperty(t *testing.T) {
	// For random binary trees, the consensus of that tree's own splits (all
	// at frequency 1) must contain every non-trivial clade (relative to the
	// reference rooting) as a parenthesized group.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src, err := Random(rng, 4+rng.Intn(8), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		splits, err := src.Splits()
		if err != nil {
			t.Fatal(err)
		}
		support := map[string]float64{}
		for s := range splits {
			support[s] = 1.0
		}
		var names []string
		for _, tip := range src.Tips() {
			names = append(names, tip.Name)
		}
		nwk, err := MajorityRuleConsensus(names, support, 0.5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Each retained split appears as a supported group.
		if strings.Count(nwk, "1.00") != len(splits) {
			t.Fatalf("seed %d: %d supported groups for %d splits in %q",
				seed, strings.Count(nwk, "1.00"), len(splits), nwk)
		}
	}
}
