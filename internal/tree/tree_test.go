package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandomTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tips := range []int{2, 3, 8, 16, 64, 128} {
		tr, err := Random(rng, tips, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tips=%d: %v", tips, err)
		}
		if tr.NodeCount() != 2*tips-1 {
			t.Fatalf("tips=%d: node count %d", tips, tr.NodeCount())
		}
		// Tips hold indices 0..tips-1 and internal nodes higher indices.
		for i, n := range tr.Nodes() {
			if n.Index != i {
				t.Fatalf("node table mismatch at %d", i)
			}
			if i < tips != n.IsTip() {
				t.Fatalf("index %d tip-ness wrong", i)
			}
		}
		// Post-order numbering: parents have higher indices than children.
		for _, n := range tr.Nodes() {
			if !n.IsTip() && (n.Index <= n.Left.Index || n.Index <= n.Right.Index) {
				t.Fatalf("node %d not post-order above children %d,%d", n.Index, n.Left.Index, n.Right.Index)
			}
		}
		if tr.Root.Index != tr.NodeCount()-1 {
			t.Fatalf("root index %d want %d", tr.Root.Index, tr.NodeCount()-1)
		}
	}
}

func TestRandomTreeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, 1, 0.1); err == nil {
		t.Fatal("expected error for 1 tip")
	}
	if _, err := Random(rng, 4, 0); err == nil {
		t.Fatal("expected error for zero mean branch length")
	}
}

func TestNewickRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tips := 2 + rng.Intn(30)
		tr, err := Random(rng, tips, 0.2)
		if err != nil {
			return false
		}
		parsed, err := ParseNewick(tr.Newick())
		if err != nil {
			return false
		}
		if parsed.Newick() != tr.Newick() {
			return false
		}
		return parsed.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParseNewickKnown(t *testing.T) {
	tr, err := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.TipCount != 3 {
		t.Fatalf("tip count %d", tr.TipCount)
	}
	names := []string{}
	for _, tip := range tr.Tips() {
		names = append(names, tip.Name)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("tips %v", names)
	}
	if math.Abs(tr.TotalLength()-0.65) > 1e-12 {
		t.Fatalf("total length %v", tr.TotalLength())
	}
}

func TestParseNewickErrors(t *testing.T) {
	bad := []string{
		"",
		"(a,b",
		"(a,b,c);",  // non-binary
		"(a:x,b);",  // bad branch length
		"(a,b);abc", // trailing garbage
		"a;",        // single tip
		"(,b);",     // missing name
	}
	for _, s := range bad {
		if _, err := ParseNewick(s); err == nil {
			t.Errorf("expected parse error for %q", s)
		}
	}
}

func TestParseNewickNoBranchLengths(t *testing.T) {
	tr, err := ParseNewick("((a,b),(c,d));")
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalLength() != 0 {
		t.Fatalf("expected zero lengths, got %v", tr.TotalLength())
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := Random(rng, 10, 0.1)
	cp := tr.Clone()
	if cp.Newick() != tr.Newick() {
		t.Fatal("clone differs from original")
	}
	cp.Node(0).Length += 1
	if cp.Newick() == tr.Newick() {
		t.Fatal("clone shares nodes with original")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullSchedule(t *testing.T) {
	tr, err := ParseNewick("((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.06);")
	if err != nil {
		t.Fatal(err)
	}
	s := tr.FullSchedule()
	if len(s.Ops) != 3 {
		t.Fatalf("op count %d want 3", len(s.Ops))
	}
	if len(s.Matrices) != 6 {
		t.Fatalf("matrix count %d want 6", len(s.Matrices))
	}
	if s.Root != tr.Root.Index {
		t.Fatalf("root %d want %d", s.Root, tr.Root.Index)
	}
	// Post-order: destination buffers appear after any op producing a child.
	produced := map[int]int{}
	for i, op := range s.Ops {
		produced[op.Dest] = i
	}
	for i, op := range s.Ops {
		for _, c := range []int{op.Child1, op.Child2} {
			if j, ok := produced[c]; ok && j >= i {
				t.Fatalf("op %d consumes buffer %d produced later (op %d)", i, c, j)
			}
		}
	}
}

func TestDirtySchedule(t *testing.T) {
	tr, err := ParseNewick("((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.06);")
	if err != nil {
		t.Fatal(err)
	}
	// Dirty tip "a": must recompute a's matrix, a's parent, and the root.
	a := tr.Tips()[0]
	s := tr.DirtySchedule([]*Node{a})
	if len(s.Matrices) != 1 || s.Matrices[0].Matrix != a.Index {
		t.Fatalf("matrices %v", s.Matrices)
	}
	if len(s.Ops) != 2 {
		t.Fatalf("ops %v", s.Ops)
	}
	if s.Ops[len(s.Ops)-1].Dest != tr.Root.Index {
		t.Fatal("last op must rebuild the root partials")
	}
}

func TestOpLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, _ := Random(rng, 32, 0.1)
	s := tr.FullSchedule()
	levels := OpLevels(s.Ops)
	total := 0
	produced := map[int]int{} // dest -> level
	for li, lvl := range levels {
		if len(lvl) == 0 {
			t.Fatalf("empty level %d", li)
		}
		for _, op := range lvl {
			total++
			// Children must be tips or produced at a strictly earlier level.
			for _, c := range []int{op.Child1, op.Child2} {
				if pl, ok := produced[c]; ok && pl >= li {
					t.Fatalf("level %d op consumes buffer produced at level %d", li, pl)
				}
			}
			produced[op.Dest] = li
		}
	}
	if total != len(s.Ops) {
		t.Fatalf("levels hold %d ops, want %d", total, len(s.Ops))
	}
}

func TestScaleBranchMove(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, _ := Random(rng, 8, 0.1)
	before := tr.TotalLength()
	n, logHR := tr.ScaleBranch(rng, 1)
	if n == tr.Root {
		t.Fatal("must not scale the root branch")
	}
	if tr.TotalLength() == before {
		t.Fatal("branch length unchanged")
	}
	if math.IsNaN(logHR) || math.IsInf(logHR, 0) {
		t.Fatalf("bad Hastings ratio %v", logHR)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNNIPreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, 3+rng.Intn(20), 0.1)
		if err != nil {
			return false
		}
		tipsBefore := map[string]bool{}
		for _, tip := range tr.Tips() {
			tipsBefore[tip.Name] = true
		}
		if _, _, err := tr.NNI(rng); err != nil {
			// Only 3-tip trees might lack internal edges; with a rooted
			// binary tree of ≥3 tips there is always at least one.
			return false
		}
		tr.Renumber()
		if tr.Validate() != nil {
			return false
		}
		for _, tip := range tr.Tips() {
			if !tipsBefore[tip.Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNNITooSmall(t *testing.T) {
	tr, _ := ParseNewick("(a:1,b:1);")
	if _, _, err := tr.NNI(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for 2-tip tree")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, _ := ParseNewick("((a:1,b:1):1,c:1);")
	tr.Root.Left.Parent = nil // break a parent link
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation failure")
	}
}
