package gobeagle

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// TestInstanceSurface exercises the remaining public Instance methods —
// accessors, raw buffer round trips, explicit matrices, per-site outputs and
// edge likelihoods — through the public API.
func TestInstanceSurface(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(55))
	tr, err := tree.ParseNewick("((a:0.1,b:0.2):0.07,(c:0.15,d:0.05):0.09);")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 2)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 150)
	ps := seqgen.CompressPatterns(align)

	cfg := instanceConfig(tr, 4, ps.PatternCount(), 2, 0, 0)
	cfg.MatrixBuffers = 10
	inst, err := NewInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()

	// Accessors.
	if inst.Resource().ID != 0 {
		t.Fatalf("resource %+v", inst.Resource())
	}
	if inst.Config().PatternCount != ps.PatternCount() {
		t.Fatal("config accessor broken")
	}
	if inst.DeviceQueue() != nil {
		t.Fatal("host instance must have no device queue")
	}

	// Full evaluation with expanded tips.
	ed, _ := m.Eigen()
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(rates.Rates),
		inst.SetCategoryWeights(rates.Weights),
		inst.SetStateFrequencies(m.Frequencies),
		inst.SetPatternWeights(ps.Weights),
		inst.SetTipPartials(0, ps.TipPartials(0)),
		inst.SetTipPartials(1, ps.TipPartials(1)),
		inst.SetTipPartials(2, ps.TipPartials(2)),
		inst.SetTipPartials(3, ps.TipPartials(3)),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := inst.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}

	// Per-site log likelihoods sum (weighted) to the total.
	site, err := inst.SiteLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for p, l := range site {
		sum += ps.Weights[p] * l
	}
	if math.Abs(sum-lnL) > 1e-9*math.Abs(lnL) {
		t.Fatalf("site sum %v vs total %v", sum, lnL)
	}

	// Pulley principle through the public edge call.
	joined := tr.Root.Left.Length + tr.Root.Right.Length
	if err := inst.UpdateTransitionMatrices(0, []int{9}, []float64{joined}); err != nil {
		t.Fatal(err)
	}
	edge, err := inst.CalculateEdgeLogLikelihoods(tr.Root.Left.Index, tr.Root.Right.Index, 9, None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(edge-lnL) > 1e-9*math.Abs(lnL) {
		t.Fatalf("edge lnL %v vs root %v", edge, lnL)
	}

	// GetPartials / SetPartials round trip.
	got, err := inst.GetPartials(sched.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SetPartials(sched.Root, got); err != nil {
		t.Fatal(err)
	}
	again, err := inst.GetPartials(sched.Root)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("partials round trip mismatch at %d", i)
		}
	}

	// SetTransitionMatrix / GetTransitionMatrix round trip.
	raw := make([]float64, cfg.CategoryCount*16)
	for i := range raw {
		raw[i] = rng.Float64()
	}
	if err := inst.SetTransitionMatrix(8, raw); err != nil {
		t.Fatal(err)
	}
	back, err := inst.GetTransitionMatrix(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if raw[i] != back[i] {
			t.Fatalf("matrix round trip mismatch at %d", i)
		}
	}

	// DeviceQueue present on accelerator-backed instances.
	amd, err := FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		t.Fatal(err)
	}
	devCfg := cfg
	devCfg.ResourceID = amd.ID
	devInst, err := NewInstance(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer devInst.Finalize()
	if devInst.DeviceQueue() == nil {
		t.Fatal("device instance must expose its queue")
	}
}
