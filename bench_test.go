package gobeagle_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// These run the real implementations end-to-end on the build host and
// report measured wall-clock throughput as the "gflops" metric, plus the
// modeled-hardware throughput ("model-gflops") where the experiment is
// defined on the paper's devices. The cmd/beaglebench tool regenerates the
// full tables/figures; these benches provide the measured counterpart:
//
//	go test -bench=. -benchmem
import (
	"testing"

	"gobeagle"

	"gobeagle/internal/benchmarks"
	"gobeagle/internal/mcmc"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
	"math/rand"
)

// benchEval measures repeated full evaluations of the partial-likelihoods
// operations through the public API.
func benchEval(b *testing.B, p *benchmarks.Problem, resourceID int, flags gobeagle.Flags, workGroup int) {
	b.Helper()
	cfg := p.InstanceConfig(resourceID, flags)
	cfg.WorkGroupSize = workGroup
	inst, err := gobeagle.NewInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Finalize()
	if err := p.Load(inst); err != nil {
		b.Fatal(err)
	}
	mats, lens, ops, root := p.Schedule()
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		b.Fatal(err)
	}
	if q := inst.DeviceQueue(); q != nil {
		q.ResetTimers()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.UpdatePartials(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perEval := p.FlopsPerEval()
	b.ReportMetric(perEval*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
	if q := inst.DeviceQueue(); q != nil && q.ModeledTime() > 0 {
		b.ReportMetric(perEval*float64(b.N)/q.ModeledTime().Seconds()/1e9, "model-gflops")
	}
	if _, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable3 measures the CPU strategies of Table III (single
// precision, nucleotide model, 10,000 patterns, 16 tips).
func BenchmarkTable3(b *testing.B) {
	p, err := benchmarks.NewProblem(3, 16, 4, 10000, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		flags gobeagle.Flags
	}{
		{"serial", 0},
		{"futures", gobeagle.FlagThreadingFutures},
		{"threadcreate", gobeagle.FlagThreadingThreadCreate},
		{"threadpool", gobeagle.FlagThreadingThreadPool},
		{"hybrid", gobeagle.FlagThreadingThreadPoolHybrid},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchEval(b, p, 0, c.flags|gobeagle.FlagPrecisionSingle, 0)
		})
	}
}

// BenchmarkTable3Hybrid measures the small-pattern regime of the Table III
// extension: 64 tips at 128–512 patterns, where the plain pattern-chunking
// strategies fall back to serial but the hybrid op×pattern scheduler keeps
// the pool busy on independent operations.
func BenchmarkTable3Hybrid(b *testing.B) {
	for _, patterns := range []int{128, 256, 512} {
		p, err := benchmarks.NewProblem(int64(patterns), 64, 4, patterns, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range []struct {
			name  string
			flags gobeagle.Flags
		}{
			{"threadpool", gobeagle.FlagThreadingThreadPool},
			{"hybrid", gobeagle.FlagThreadingThreadPoolHybrid},
		} {
			b.Run(benchName(c.name+"-p", patterns), func(b *testing.B) {
				benchEval(b, p, 0, c.flags|gobeagle.FlagPrecisionSingle, 0)
			})
		}
	}
}

// BenchmarkTable4 measures the OpenCL-GPU kernels with and without FMA on
// the simulated Radeon R9 Nano (Table IV; the model-gflops metric carries
// the FMA effect).
func BenchmarkTable4(b *testing.B) {
	p, err := benchmarks.NewProblem(4, 16, 4, 10000, 4)
	if err != nil {
		b.Fatal(err)
	}
	rsc, err := gobeagle.FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		flags gobeagle.Flags
	}{
		{"double-fma", 0},
		{"double-nofma", gobeagle.FlagDisableFMA},
		{"single-fma", gobeagle.FlagPrecisionSingle},
		{"single-nofma", gobeagle.FlagPrecisionSingle | gobeagle.FlagDisableFMA},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchEval(b, p, rsc.ID, c.flags, 0)
		})
	}
}

// BenchmarkTable5 measures the OpenCL-x86 work-group size sweep plus the
// GPU-style-kernel reference on the CPU-class OpenCL device (Table V).
func BenchmarkTable5(b *testing.B) {
	p, err := benchmarks.NewProblem(5, 16, 4, 10000, 4)
	if err != nil {
		b.Fatal(err)
	}
	rsc, err := gobeagle.FindResource("Xeon E5-2680v4 x2", "OpenCL")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gpu-style-wg64", func(b *testing.B) {
		benchEval(b, p, rsc.ID, gobeagle.FlagPrecisionSingle|gobeagle.FlagKernelGPU, 64)
	})
	for _, wg := range []int{64, 128, 256, 512, 1024} {
		b.Run(benchName("x86-wg", wg), func(b *testing.B) {
			benchEval(b, p, rsc.ID, gobeagle.FlagPrecisionSingle, wg)
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig4 measures the kernel-throughput sweep of Fig. 4 at three
// pattern counts per model family, across the implementation classes.
func BenchmarkFig4(b *testing.B) {
	for _, family := range []struct {
		name     string
		states   int
		patterns []int
	}{
		{"nucleotide", 4, []int{1000, 10000}},
		{"codon", 61, []int{316, 1000}},
	} {
		for _, pat := range family.patterns {
			p, err := benchmarks.NewProblem(int64(pat), 16, family.states, pat, 4)
			if err != nil {
				b.Fatal(err)
			}
			for _, impl := range []struct {
				name      string
				resource  string
				framework string
				flags     gobeagle.Flags
			}{
				{"cuda-p5000", "Quadro P5000", "CUDA", gobeagle.FlagPrecisionSingle},
				{"opencl-r9nano", "Radeon R9 Nano", "OpenCL", gobeagle.FlagPrecisionSingle},
				{"opencl-x86", "Xeon E5-2680v4 x2", "OpenCL", gobeagle.FlagPrecisionSingle},
				{"cpu-threadpool", "", "", gobeagle.FlagPrecisionSingle | gobeagle.FlagThreadingThreadPool},
				{"cpu-serial", "", "", gobeagle.FlagPrecisionSingle},
			} {
				id := 0
				if impl.resource != "" {
					rsc, err := gobeagle.FindResource(impl.resource, impl.framework)
					if err != nil {
						b.Fatal(err)
					}
					id = rsc.ID
				}
				b.Run(family.name+"/"+benchName(impl.name, pat), func(b *testing.B) {
					benchEval(b, p, id, impl.flags, 0)
				})
			}
		}
	}
}

// BenchmarkFig5 measures the multicore-scaling configurations of Fig. 5:
// the thread-pool model and OpenCL-x86 under restricted thread counts
// (device fission).
func BenchmarkFig5(b *testing.B) {
	p, err := benchmarks.NewProblem(6, 16, 4, 10000, 4)
	if err != nil {
		b.Fatal(err)
	}
	rsc, err := gobeagle.FindResource("Xeon E5-2680v4 x2", "OpenCL")
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4} {
		b.Run(benchName("threadpool-t", threads), func(b *testing.B) {
			cfg := p.InstanceConfig(0, gobeagle.FlagPrecisionSingle|gobeagle.FlagThreadingThreadPool)
			cfg.Threads = threads
			inst, err := gobeagle.NewInstance(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer inst.Finalize()
			if err := p.Load(inst); err != nil {
				b.Fatal(err)
			}
			mats, lens, ops, _ := p.Schedule()
			if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inst.UpdatePartials(ops); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.FlopsPerEval()*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
		b.Run(benchName("opencl-x86-fission-t", threads), func(b *testing.B) {
			cfg := p.InstanceConfig(rsc.ID, gobeagle.FlagPrecisionSingle)
			cfg.Threads = threads
			inst, err := gobeagle.NewInstance(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer inst.Finalize()
			if err := p.Load(inst); err != nil {
				b.Fatal(err)
			}
			mats, lens, ops, _ := p.Schedule()
			if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inst.UpdatePartials(ops); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.FlopsPerEval()*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}

// BenchmarkFig6 measures whole MC3 generations — the application-level
// workload of Fig. 6 — under the native (MrBayes-style) engine and the
// library-backed engines.
func BenchmarkFig6(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tr, err := tree.Random(rng, 15, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	model, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		b.Fatal(err)
	}
	rates := substmodel.SingleRate()
	align, err := seqgen.Simulate(rng, tr, model, rates, 4000)
	if err != nil {
		b.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)

	makeEngines := func(b *testing.B, build func() (mcmc.LikelihoodEngine, error)) []mcmc.LikelihoodEngine {
		engines := make([]mcmc.LikelihoodEngine, 2)
		for i := range engines {
			e, err := build()
			if err != nil {
				b.Fatal(err)
			}
			engines[i] = e
		}
		return engines
	}
	runMC3 := func(b *testing.B, engines []mcmc.LikelihoodEngine) {
		defer func() {
			for _, e := range engines {
				e.Close()
			}
		}()
		b.ResetTimer()
		if _, err := mcmc.Run(mcmc.Config{
			Tree:        tr,
			Engines:     engines,
			Generations: b.N,
			HeatLambda:  0.1,
			Seed:        1,
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gen/s")
	}

	b.Run("native-double", func(b *testing.B) {
		runMC3(b, makeEngines(b, func() (mcmc.LikelihoodEngine, error) {
			return mcmc.NewNativeEngine(model, rates, ps, false)
		}))
	})
	b.Run("native-sse-single", func(b *testing.B) {
		runMC3(b, makeEngines(b, func() (mcmc.LikelihoodEngine, error) {
			return mcmc.NewNativeEngine(model, rates, ps, true)
		}))
	})
	b.Run("beagle-threadpool-double", func(b *testing.B) {
		runMC3(b, makeEngines(b, func() (mcmc.LikelihoodEngine, error) {
			return mcmc.NewBeagleEngine(model, rates, ps, tr, 0, gobeagle.FlagThreadingThreadPool)
		}))
	})
	b.Run("beagle-sse-single", func(b *testing.B) {
		runMC3(b, makeEngines(b, func() (mcmc.LikelihoodEngine, error) {
			return mcmc.NewBeagleEngine(model, rates, ps, tr, 0, gobeagle.FlagVectorSSE|gobeagle.FlagPrecisionSingle)
		}))
	})
}
