#!/bin/sh
# Benchmark regression gate: reruns the gated experiments and compares each
# record against the committed baselines in bench/baselines/, failing (exit
# nonzero) on any throughput regression beyond tolerance or on baseline
# records the current run no longer produces. Used by the CI bench-smoke job;
# regenerate baselines with scripts/bench_baseline.sh after intentional
# performance changes.
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BASELINES="$ROOT/bench/baselines"

if [ ! -d "$BASELINES" ]; then
    echo "bench_gate: no baselines at $BASELINES (run scripts/bench_baseline.sh)" >&2
    exit 1
fi

SECTION="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "FAILED in section: $SECTION (exit $status)" >&2; fi' EXIT

section() {
    SECTION=$1
    echo "== $SECTION"
}

# fig4smoke throughput is computed from the calibrated device and CPU
# performance models, so it is deterministic and gated at the default 10%.
section "gate fig4smoke"
go -C "$ROOT" run ./cmd/beaglebench -experiment fig4smoke -compare "$BASELINES" >/dev/null

# rebalance speedups are measured wall-clock ratios with a few percent of
# scheduler noise; 30% tolerance still catches the failure this experiment
# guards against — the adaptive speedup collapsing toward 1.0 (a -55% move).
section "gate rebalance"
go -C "$ROOT" run ./cmd/beaglebench -experiment rebalance -compare "$BASELINES" -tolerance 0.30 >/dev/null

# mcmcreuse speedups are wall-clock ratios on shared CI hosts; the baseline
# reuse-on speedup is ~7.7x, so a generous 35% tolerance (floor ~5x) still
# catches the regression this gate exists for — incremental re-evaluation
# degrading toward full recomputation (speedup 1.0, a -87% move).
section "gate mcmcreuse"
go -C "$ROOT" run ./cmd/beaglebench -experiment mcmcreuse -compare "$BASELINES" -tolerance 0.35 >/dev/null

SECTION="done"
echo "benchmark gate passed"
