#!/bin/sh
# Benchmark regression gate: reruns the gated experiments and compares each
# record against the committed baselines in bench/baselines/, failing (exit
# nonzero) on any throughput regression beyond tolerance or on baseline
# records the current run no longer produces. Used by the CI bench-smoke and
# serve-smoke jobs; regenerate baselines with scripts/bench_baseline.sh after
# intentional performance changes.
#
# Usage: bench_gate.sh [section]
#   With no argument every gated experiment runs; with a section name
#   (fig4smoke, rebalance, distshard, mcmcreuse, serve) only that gate runs.
#   With BENCH_GATE_JSON=dir set, each gated run also writes its
#   BENCH_<experiment>.json there (the CI artifact), so CI gates and
#   produces the report in a single run.
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BASELINES="$ROOT/bench/baselines"
ONLY="${1:-}"
JSON_ARGS=""
if [ -n "${BENCH_GATE_JSON:-}" ]; then
    JSON_ARGS="-json $BENCH_GATE_JSON"
fi

if [ ! -d "$BASELINES" ]; then
    echo "bench_gate: no baselines at $BASELINES (run scripts/bench_baseline.sh)" >&2
    exit 1
fi

SECTION="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "FAILED in section: $SECTION (exit $status)" >&2; fi' EXIT

wanted() {
    [ -z "$ONLY" ] || [ "$ONLY" = "$1" ]
}

section() {
    SECTION=$1
    echo "== $SECTION"
}

# fig4smoke throughput is computed from the calibrated device and CPU
# performance models, so it is deterministic and gated at the default 10%.
if wanted fig4smoke; then
    section "gate fig4smoke"
    go -C "$ROOT" run ./cmd/beaglebench -experiment fig4smoke -compare "$BASELINES" $JSON_ARGS >/dev/null
fi

# rebalance speedups are measured wall-clock ratios with a few percent of
# scheduler noise; 30% tolerance still catches the failure this experiment
# guards against — the adaptive speedup collapsing toward 1.0 (a -55% move).
if wanted rebalance; then
    section "gate rebalance"
    go -C "$ROOT" run ./cmd/beaglebench -experiment rebalance -compare "$BASELINES" -tolerance 0.30 $JSON_ARGS >/dev/null
fi

# distshard compares distributed sharding over loopback workers against the
# local multi-device and single-engine baselines. On a small host the ratios
# sit near 1.0 and the remote phase just below it (wire overhead, no extra
# cores), so the 50% tolerance gates the failure that matters: the RPC layer
# regressing until the sharded path collapses (speedup toward 0.2-0.3). The
# experiment also hard-fails on any non-bit-identical root, tolerance aside.
if wanted distshard; then
    section "gate distshard"
    go -C "$ROOT" run ./cmd/beaglebench -experiment distshard -compare "$BASELINES" -tolerance 0.50 $JSON_ARGS >/dev/null
fi

# mcmcreuse speedups are wall-clock ratios on shared CI hosts; the baseline
# reuse-on speedup is ~7.7x, so a generous 35% tolerance (floor ~5x) still
# catches the regression this gate exists for — incremental re-evaluation
# degrading toward full recomputation (speedup 1.0, a -87% move).
if wanted mcmcreuse; then
    section "gate mcmcreuse"
    go -C "$ROOT" run ./cmd/beaglebench -experiment mcmcreuse -compare "$BASELINES" -tolerance 0.35 $JSON_ARGS >/dev/null
fi

# serve gates the pooled-vs-per-request p99 tail-latency ratio. Open-loop
# latency tails on shared single-core runners are the noisiest metric we
# gate, so the tolerance is wide (60%; baseline ~2x -> floor ~0.8x). It still
# catches the failure that matters: the pooled path regressing to *worse*
# tails than naive one-instance-per-request serving. (On multicore hosts the
# batch submissions engage the thread pool and the measured gap widens; see
# EXPERIMENTS.md.)
if wanted serve; then
    section "gate serve"
    go -C "$ROOT" run ./cmd/beaglebench -experiment serve -compare "$BASELINES" -tolerance 0.60 $JSON_ARGS >/dev/null
fi

SECTION="done"
echo "benchmark gate passed"
