#!/bin/sh
# Correctness-check scripts, the analogue of the genomictest test scripts
# the paper describes in §V-A: "a set of testing scripts which evaluate
# different analyses types by varying input parameters to our genomictest
# program". Every configuration cross-validates all compute resources
# against the serial CPU reference.
#
# Runnable from any working directory; fails fast and names the section
# that failed. Used locally and by the CI "correctness checks" job.
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
TIMEOUT=${CHECK_TIMEOUT:-15m}

SECTION="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "FAILED in section: $SECTION (exit $status)" >&2; fi' EXIT

section() {
    SECTION=$1
    echo "== $SECTION"
}

section "go vet ./..."
go -C "$ROOT" vet ./...

# beaglevet: the repo's own analyzer suite (internal/analysis) — noalloc,
# nopanic, flagexcl, hazardcapture, allocguard, plus the interprocedural
# checks lockorder, atomicmix, goroleak, mapdeterminism and ctxhttp (all on
# by default; any unwaived diagnostic fails the run). Stock vet already ran
# above, so -stock=false avoids running it twice.
section "beaglevet ./..."
go -C "$ROOT" run ./cmd/beaglevet -stock=false ./...

section "go test -race -short ./..."
go -C "$ROOT" test -race -short -timeout "$TIMEOUT" ./...

run() {
    section "genomictest -check $*"
    go -C "$ROOT" run ./cmd/genomictest -check "$@"
}

# Nucleotide models: precision x rate categories x problem sizes.
run -states 4 -taxa 8   -patterns 500  -categories 1 -precision double
run -states 4 -taxa 16  -patterns 1000 -categories 4 -precision double
run -states 4 -taxa 16  -patterns 1000 -categories 4 -precision single
run -states 4 -taxa 64  -patterns 200  -categories 2 -precision double

# Amino-acid model.
run -states 20 -taxa 8 -patterns 200 -categories 2 -precision double

# Codon model.
run -states 61 -taxa 6 -patterns 100 -categories 1 -precision double
run -states 61 -taxa 6 -patterns 100 -categories 1 -precision single

# Telemetry smoke: -stats must report per-kernel counts without breaking
# the benchmark path.
section "genomictest -stats smoke"
stats_out=$(go -C "$ROOT" run ./cmd/genomictest -stats -taxa 8 -patterns 200 -reps 1 -threading hybrid)
echo "$stats_out" | grep -q 'telemetry:'

# Trace smoke: -trace must produce a schema-valid multi-layer timeline.
section "genomictest -trace smoke"
trace_tmp=$(mktemp)
go -C "$ROOT" run ./cmd/genomictest -taxa 8 -patterns 200 -reps 1 -threading hybrid -trace "$trace_tmp" >/dev/null
go -C "$ROOT" run ./cmd/beagletrace -require-layers "scheduler,storage" "$trace_tmp" >/dev/null
rm -f "$trace_tmp"

# Serving-layer smoke: beagled boots in-process, serves a request through the
# warm pool (cold and warm) and over HTTP, and every served log likelihood
# must be bit-identical to dedicated-instance evaluation.
section "beagled -selfcheck"
go -C "$ROOT" run ./cmd/beagled -selfcheck

SECTION="done"
echo "all checks passed"
