#!/bin/sh
# Correctness-check scripts, the analogue of the genomictest test scripts
# the paper describes in §V-A: "a set of testing scripts which evaluate
# different analyses types by varying input parameters to our genomictest
# program". Every configuration cross-validates all compute resources
# against the serial CPU reference.
set -e
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race -short ./..."
go test -race -short ./...

run() {
    echo "== genomictest -check $*"
    go run ./cmd/genomictest -check "$@"
}

# Nucleotide models: precision x rate categories x problem sizes.
run -states 4 -taxa 8   -patterns 500  -categories 1 -precision double
run -states 4 -taxa 16  -patterns 1000 -categories 4 -precision double
run -states 4 -taxa 16  -patterns 1000 -categories 4 -precision single
run -states 4 -taxa 64  -patterns 200  -categories 2 -precision double

# Amino-acid model.
run -states 20 -taxa 8 -patterns 200 -categories 2 -precision double

# Codon model.
run -states 61 -taxa 6 -patterns 100 -categories 1 -precision double
run -states 61 -taxa 6 -patterns 100 -categories 1 -precision single

echo "all checks passed"
