#!/bin/sh
# Runs every example program end to end.
set -e
cd "$(dirname "$0")/.."
for ex in quickstart mlsearch bayes partitioned multidevice; do
    echo "== examples/$ex"
    go run "./examples/$ex"
    echo
done
echo "all examples ran"
