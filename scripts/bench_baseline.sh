#!/bin/sh
# Regenerates the committed benchmark baselines under bench/baselines/.
# Run this after an intentional performance change (or on a new reference
# machine), inspect the diff, and commit the updated BENCH_*.json files;
# scripts/bench_gate.sh gates CI runs against them.
#
# fig4smoke throughput comes from the calibrated performance models and is
# fully deterministic; rebalance and mcmcreuse speedups are measured
# wall-clock ratios with a few percent of run-to-run noise, which the gate's
# wider tolerances for those experiments absorb. The serve baseline pins the
# pooled-vs-per-request p99 latency ratio; its informational latency fields
# are machine-specific and not compared by the gate.
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
OUT="$ROOT/bench/baselines"

mkdir -p "$OUT"
echo "== regenerating baselines into $OUT"
go -C "$ROOT" run ./cmd/beaglebench -experiment fig4smoke -json "$OUT" >/dev/null
go -C "$ROOT" run ./cmd/beaglebench -experiment rebalance -json "$OUT" >/dev/null
go -C "$ROOT" run ./cmd/beaglebench -experiment distshard -json "$OUT" >/dev/null
go -C "$ROOT" run ./cmd/beaglebench -experiment mcmcreuse -json "$OUT" >/dev/null
go -C "$ROOT" run ./cmd/beaglebench -experiment serve -json "$OUT" >/dev/null
ls -l "$OUT"
echo "baselines regenerated; review the diff before committing"
