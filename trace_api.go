package gobeagle

import (
	"io"

	"gobeagle/internal/trace"
)

// This file is the public surface of the span tracer (internal/trace): a
// timeline counterpart to the aggregate counters of Stats. When tracing is
// on, every layer of an instance records spans into per-shard ring buffers —
// the CPU scheduler its batches, dependency levels and per-worker tasks; the
// accelerator framework its kernel launches and host↔device transfers on the
// modeled device clock; multi-device instances their batch barriers,
// per-backend execution, rebalance decisions and pattern migrations — and
// TraceJSON exports the retained window as a Chrome trace-event document
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Tracing is off unless the instance was created with FlagTrace or
// EnableTrace(true) was called. Disabled tracing costs one atomic load per
// instrumented site, the same contract the telemetry layer keeps.

// EnableTrace switches span collection on or off at runtime. The span
// buffers retain the most recent trace.TraceCapacity spans; Perfetto-scale
// runs should export shortly after the region of interest.
func (in *Instance) EnableTrace(on bool) { in.tr.SetEnabled(on) }

// TraceEnabled reports whether span collection is currently on.
func (in *Instance) TraceEnabled() bool { return in.tr.Enabled() }

// ResetTrace discards all retained spans; the enabled switch is unchanged.
func (in *Instance) ResetTrace() { in.tr.Reset() }

// TraceSpanCount returns the number of currently retained spans.
func (in *Instance) TraceSpanCount() int { return len(in.tr.Snapshot()) }

// TraceJSON writes the retained spans as a Chrome trace-event JSON document.
// Processes group spans by layer (scheduler, workers, device, multi-device,
// storage) and threads carry lanes (worker index, backend index). Note the
// device process is stamped on the modeled device clock, which starts at
// zero — its spans align with each other, not with host-side spans.
func (in *Instance) TraceJSON(w io.Writer) error {
	return trace.WriteJSON(w, in.tr.Snapshot())
}

// newInstanceTracer builds the tracer every instance carries: always present
// so tracing can be toggled at runtime, enabled only when FlagTrace is set.
func newInstanceTracer(flags Flags) *trace.Tracer {
	tr := trace.New()
	tr.SetEnabled(flags&FlagTrace != 0)
	return tr
}
