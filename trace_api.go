package gobeagle

import (
	"fmt"
	"io"

	"gobeagle/internal/multiimpl"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/trace"
)

// This file is the public surface of the span tracer (internal/trace): a
// timeline counterpart to the aggregate counters of Stats. When tracing is
// on, every layer of an instance records spans into per-shard ring buffers —
// the CPU scheduler its batches, dependency levels and per-worker tasks; the
// accelerator framework its kernel launches and host↔device transfers on the
// modeled device clock; multi-device instances their batch barriers,
// per-backend execution, rebalance decisions and pattern migrations — and
// TraceJSON exports the retained window as a Chrome trace-event document
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Tracing is off unless the instance was created with FlagTrace or
// EnableTrace(true) was called. Disabled tracing costs one atomic load per
// instrumented site, the same contract the telemetry layer keeps.

// EnableTrace switches span collection on or off at runtime. The span
// buffers retain the most recent trace.TraceCapacity spans; Perfetto-scale
// runs should export shortly after the region of interest.
func (in *Instance) EnableTrace(on bool) { in.tr.SetEnabled(on) }

// TraceEnabled reports whether span collection is currently on.
func (in *Instance) TraceEnabled() bool { return in.tr.Enabled() }

// ResetTrace discards all retained spans; the enabled switch is unchanged.
func (in *Instance) ResetTrace() { in.tr.Reset() }

// TraceSpanCount returns the number of currently retained spans.
func (in *Instance) TraceSpanCount() int { return len(in.tr.Snapshot()) }

// TraceSpans returns the retained spans in record order — the raw form of
// TraceJSON, for callers (the serve layer's stitched export) that compose
// several instances' spans into one document.
func (in *Instance) TraceSpans() []trace.Span { return in.tr.Snapshot() }

// TraceEpochNanos returns the wall-clock instant (UnixNano) this instance's
// span timeline starts at, for rebasing its spans onto another timeline.
func (in *Instance) TraceEpochNanos() int64 { return in.tr.EpochNanos() }

// SetTraceRequest tags subsequently recorded spans — across every layer of
// this instance, and across the wire into worker processes — with a served
// request identity. Zero clears the tag. The serve layer brackets each
// engine submission with this so a stitched trace can follow one request
// from admission to worker kernels. One atomic store; safe when tracing is
// off or the instance was built without FlagTrace.
func (in *Instance) SetTraceRequest(id uint64) { in.tr.SetRequest(id) }

// TraceJSON writes the retained spans as a Chrome trace-event JSON document.
// Processes group spans by layer (scheduler, workers, device, multi-device,
// storage, network) and threads carry lanes (worker index, backend index).
// For distributed instances the export is stitched: each remote worker's
// engine-side spans are drained over the wire, rebased into this instance's
// timeline using the drain round trip's clock midpoint, and rendered as a
// separate "remote worker N (addr)" process track, so wire-time gaps appear
// between the client's rpc spans and the worker's apply spans. Note the
// device process is stamped on the modeled device clock, which starts at
// zero — its spans align with each other, not with host-side spans.
func (in *Instance) TraceJSON(w io.Writer) error {
	return trace.WriteStitched(w, in.tr.Snapshot(), in.RemoteTraceProcesses())
}

// RemoteTraceProcesses drains the engine-side spans each remote worker
// recorded for this instance's traced calls, rebased into this instance's
// span timeline and grouped per worker process. It returns nil for local
// instances, when tracing is off, or when the workers predate the span
// drain protocol. Draining clears the worker-side buffers, so each call
// returns only spans recorded since the previous drain.
func (in *Instance) RemoteTraceProcesses() []trace.Process {
	me, ok := in.eng.(*multiimpl.Engine)
	if !ok {
		return nil
	}
	var procs []trace.Process
	idx := 0
	for _, sub := range me.Backends() {
		re, ok := sub.(*remoteimpl.Engine)
		if !ok {
			continue
		}
		spans, err := re.DrainSpans()
		if err == nil && len(spans) > 0 {
			procs = append(procs, trace.Process{
				Name:  fmt.Sprintf("remote worker %d (%s)", idx, re.Addr()),
				Spans: spans,
			})
		}
		idx++
	}
	return procs
}

// newInstanceTracer builds the tracer every instance carries: always present
// so tracing can be toggled at runtime, enabled only when FlagTrace is set.
func newInstanceTracer(flags Flags) *trace.Tracer {
	tr := trace.New()
	tr.SetEnabled(flags&FlagTrace != 0)
	return tr
}
