package gobeagle

import (
	"fmt"
	"sort"
	"sync"

	"gobeagle/internal/accelimpl"
	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
	"gobeagle/internal/engine"
)

// Factory builds an engine for a (resource, flags) request, or reports that
// it does not apply. It is the plugin hook of the implementation-management
// layer: new implementations register themselves and become available to
// client programs without changes to the core library (§IV-C).
type Factory struct {
	// Name identifies the factory in diagnostics.
	Name string
	// Priority orders factories; higher priority is consulted first.
	Priority int
	// Build returns (nil, nil) when the factory does not apply to the
	// request, an engine on success, or an error to abort creation.
	Build func(cfg engine.Config, rsc *Resource, flags Flags) (engine.Engine, error)
}

var registry struct {
	mu        sync.Mutex
	factories []*Factory
}

// RegisterFactory installs an implementation factory; higher-priority
// factories are consulted first.
func RegisterFactory(f *Factory) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.factories = append(registry.factories, f)
	sort.SliceStable(registry.factories, func(i, j int) bool {
		return registry.factories[i].Priority > registry.factories[j].Priority
	})
}

// Factories returns the installed factories in consultation order.
func Factories() []*Factory {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return append([]*Factory(nil), registry.factories...)
}

// buildEngine consults the registry for the first applicable factory.
func buildEngine(cfg engine.Config, rsc *Resource, flags Flags) (engine.Engine, error) {
	for _, f := range Factories() {
		eng, err := f.Build(cfg, rsc, flags)
		if err != nil {
			return nil, fmt.Errorf("gobeagle: factory %s: %w", f.Name, err)
		}
		if eng != nil {
			return eng, nil
		}
	}
	return nil, fmt.Errorf("gobeagle: no implementation available for resource %q with flags %v", rsc.Name, flags)
}

// cpuMode maps flags to the CPU execution strategy.
func cpuMode(flags Flags) cpuimpl.Mode {
	switch {
	case flags&FlagThreadingThreadPoolHybrid != 0:
		return cpuimpl.ThreadPoolHybrid
	case flags&FlagThreadingThreadPool != 0:
		return cpuimpl.ThreadPool
	case flags&FlagThreadingThreadCreate != 0:
		return cpuimpl.ThreadCreate
	case flags&FlagThreadingFutures != 0:
		return cpuimpl.Futures
	case flags&FlagVectorSSE != 0:
		return cpuimpl.SSE
	default:
		return cpuimpl.Serial
	}
}

func init() {
	// Host CPU implementations.
	RegisterFactory(&Factory{
		Name:     "cpu",
		Priority: 0,
		Build: func(cfg engine.Config, rsc *Resource, flags Flags) (engine.Engine, error) {
			if rsc.Device() != nil {
				return nil, nil
			}
			return cpuimpl.New(cfg, cpuMode(flags))
		},
	})
	// Accelerator implementations over the device framework.
	RegisterFactory(&Factory{
		Name:     "accel",
		Priority: 10,
		Build: func(cfg engine.Config, rsc *Resource, flags Flags) (engine.Engine, error) {
			dev := rsc.Device()
			if dev == nil {
				return nil, nil
			}
			var variant accelimpl.Variant
			switch {
			case dev.Framework == device.CUDA:
				variant = accelimpl.CUDA
			case dev.Desc.Kind == device.KindGPU && flags&FlagKernelX86 == 0:
				variant = accelimpl.OpenCLGPU
			case flags&FlagKernelGPU != 0:
				// The GPU-style kernels on a CPU-class OpenCL device
				// (Table V's reference row).
				variant = accelimpl.OpenCLGPU
			default:
				variant = accelimpl.OpenCLX86
			}
			// Honor restricted thread counts on CPU-class devices through
			// OpenCL device fission (Fig. 5).
			if cfg.Threads > 0 && dev.Desc.Kind != device.KindGPU && cfg.Threads < dev.Desc.Cores {
				sub, err := dev.Fission(cfg.Threads)
				if err != nil {
					return nil, err
				}
				dev = sub
			}
			return accelimpl.New(cfg, variant, dev)
		},
	})
}
