package gobeagle

import (
	"errors"
	"fmt"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/multiimpl"
	"gobeagle/internal/remoteimpl"
)

// probeTimeout bounds the stateless hello used to size a worker's default
// share at creation time.
const probeTimeout = 5 * time.Second

// WorkerStats is a public snapshot of one remote backend's transport
// counters, for monitoring a distributed instance.
type WorkerStats struct {
	// Addr is the worker's TCP address.
	Addr string
	// RPCs counts exchange attempts, including failed ones.
	RPCs int64
	// Retries counts idempotent-read retry attempts.
	Retries int64
	// Redials counts successful reconnect+resume cycles.
	Redials int64
	// PingFailures counts health-check pings that got no answer.
	PingFailures int64
	// BytesSent and BytesReceived total the wire traffic both ways.
	BytesSent     int64
	BytesReceived int64
	// LinkBandwidth is the EWMA payload bandwidth in bytes/sec (0 before any
	// large frame has been measured). It feeds the rebalancer's cross-node
	// migration-cost model.
	LinkBandwidth float64
	// FailedOver reports that the worker became unrecoverable and the
	// client replayed its journal into a local fallback engine; results stay
	// bit-identical but the shard now computes on the coordinator host.
	FailedOver bool
	// DebugAddr is the worker's advertised debug/metrics HTTP address,
	// empty when the worker serves none. Coordinators scrape it to build a
	// federated cluster metrics view.
	DebugAddr string
}

// NewDistributedInstance creates a single instance whose site patterns are
// sharded across local resources and remote beagleworker processes — the
// cluster-scale extension of the multi-device load balancing in §IX. Each
// worker address hosts one backend speaking the remoteimpl wire protocol;
// localResourceIDs (possibly empty) name ResourceList entries computed in
// this process. All Instance methods work transparently; root and site
// log-likelihoods are bit-identical to a single-resource instance.
//
// Shares follow NewMultiDeviceInstance: nil derives them from resource
// throughput, with each worker weighted by its probed core count. With
// FlagRebalance the EWMA rebalancer runs hierarchically — local devices
// rebalance freely while cross-node migrations must amortize their modeled
// transfer cost over the measured link bandwidth.
//
// Every remote backend carries a local fallback: if a worker dies and cannot
// be re-dialed, its client replays the journaled state into an engine built
// on the host resource and the batch completes bit-identically.
func NewDistributedInstance(cfg Config, workers []string, localResourceIDs []int, shares []float64) (*Instance, error) {
	if len(workers) == 0 {
		return nil, errors.New("gobeagle: need at least one worker (use NewMultiDeviceInstance for local-only instances)")
	}
	if t := cfg.Flags & threadingFlags; t&(t-1) != 0 {
		return nil, errors.New("gobeagle: at most one threading flag may be set")
	}
	resources := ResourceList()
	locals := make([]*Resource, len(localResourceIDs))
	for i, id := range localResourceIDs {
		if id < 0 || id >= len(resources) {
			return nil, errors.New("gobeagle: resource id out of range")
		}
		locals[i] = resources[id]
	}
	host := resources[0] // fallback engines always build on the host CPU

	n := len(locals) + len(workers)
	single := cfg.Flags&FlagPrecisionSingle != 0
	if shares == nil {
		shares = make([]float64, 0, n)
		for _, r := range locals {
			shares = append(shares, throughputShare(r, single))
		}
		for _, addr := range workers {
			hello, err := remoteimpl.Probe(addr, probeTimeout)
			if err != nil {
				return nil, fmt.Errorf("gobeagle: probing worker %s: %w", addr, err)
			}
			share := 40 * float64(hello.Cores)
			if !single {
				share /= 2
			}
			shares = append(shares, share)
		}
	} else if len(shares) != n {
		return nil, errors.New("gobeagle: shares length must match locals+workers")
	}

	// Local devices share node 0; each worker is its own node, so the
	// rebalancer treats worker boundaries as costed cross-node moves.
	nodes := make([]int, 0, n)
	for range locals {
		nodes = append(nodes, 0)
	}
	for i := range workers {
		nodes = append(nodes, 1+i)
	}

	ecfg := engine.Config{
		TipCount:        cfg.TipCount,
		PartialsBuffers: cfg.PartialsBuffers,
		MatrixBuffers:   cfg.MatrixBuffers,
		EigenBuffers:    cfg.EigenBuffers,
		ScaleBuffers:    cfg.ScaleBuffers,
		Dims: kernels.Dims{
			StateCount:    cfg.StateCount,
			PatternCount:  cfg.PatternCount,
			CategoryCount: cfg.CategoryCount,
		},
		SinglePrecision: single,
		Threads:         cfg.Threads,
		MinPatternsWork: cfg.MinPatternsForThreading,
		WorkGroupSize:   cfg.WorkGroupSize,
		DisableFMA:      cfg.Flags&FlagDisableFMA != 0,
		Reuse:           cfg.Flags&FlagReuse != 0,
	}
	tel := newInstanceCollector(cfg.Flags)
	ecfg.Telemetry = tel
	tr := newInstanceTracer(cfg.Flags)
	ecfg.Trace = tr

	builders := make([]multiimpl.Builder, 0, n)
	for _, rsc := range locals {
		rsc := rsc
		builders = append(builders, func(sub engine.Config) (engine.Engine, error) {
			return buildEngine(sub, rsc, cfg.Flags)
		})
	}
	for _, addr := range workers {
		addr := addr
		builders = append(builders, func(sub engine.Config) (engine.Engine, error) {
			return remoteimpl.New(sub, remoteimpl.Options{
				Addr: addr,
				Fallback: func(fb engine.Config) (engine.Engine, error) {
					return buildEngine(fb, host, cfg.Flags)
				},
			})
		})
	}

	eng, err := multiimpl.NewBalanced(ecfg, builders, shares, multiimpl.Options{
		Rebalance: cfg.Flags&FlagRebalance != 0,
		Interval:  cfg.RebalanceInterval,
		Nodes:     nodes,
	})
	if err != nil {
		return nil, err
	}
	tel.SetLabels(eng.Name(), "distributed")
	rsc := host
	if len(locals) > 0 {
		rsc = locals[0]
	}
	return &Instance{cfg: cfg, eng: eng, rsc: rsc, tel: tel, tr: tr}, nil
}

// RemoteStats reports transport counters for each remote backend of a
// distributed instance, in worker order. It returns nil for instances with
// no remote backends.
func (in *Instance) RemoteStats() []WorkerStats {
	me, ok := in.eng.(*multiimpl.Engine)
	if !ok {
		return nil
	}
	var out []WorkerStats
	for _, sub := range me.Backends() {
		re, ok := sub.(*remoteimpl.Engine)
		if !ok {
			continue
		}
		s := re.Stats()
		out = append(out, WorkerStats{
			Addr:          re.Addr(),
			RPCs:          s.RPCs,
			Retries:       s.Retries,
			Redials:       s.Redials,
			PingFailures:  s.PingFailures,
			BytesSent:     s.BytesSent,
			BytesReceived: s.BytesReceived,
			LinkBandwidth: s.LinkBandwidth,
			FailedOver:    s.FailedOver,
			DebugAddr:     re.DebugAddr(),
		})
	}
	return out
}
