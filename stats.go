package gobeagle

import (
	"time"

	"gobeagle/internal/multiimpl"
	"gobeagle/internal/reuse"
	"gobeagle/internal/telemetry"
)

// Stats is a point-in-time snapshot of an instance's telemetry: per-kernel
// operation counters and duration histograms, effective-GFLOPS accounting,
// and the retained scheduler dependency-level traces. Snapshots are taken
// atomically against concurrent recording and are plain data, safe to retain
// and to serialize (all fields marshal cleanly to JSON).
//
// Collection is off unless the instance was created with FlagTelemetry or
// EnableTelemetry(true) was called; a disabled instance yields a snapshot
// with Enabled == false and whatever was recorded while collection was on.
type Stats struct {
	// Implementation is the engine name, e.g. "CPU-threadpool-hybrid" or
	// "OpenCL-GPU: Radeon R9 Nano".
	Implementation string `json:"implementation"`
	// Strategy is the scheduling strategy: the CPU threading model
	// ("serial", "futures", "thread-pool-hybrid", ...), "device" for
	// accelerator implementations, or "multi-device".
	Strategy string `json:"strategy"`
	// Enabled reports whether collection was on when the snapshot was taken.
	Enabled bool `json:"enabled"`
	// TotalFlops is the accumulated effective floating-point operation count
	// of the partials updates — the paper's §V-A measure, from the same
	// per-operation flop model genomictest and beaglebench use.
	TotalFlops float64 `json:"total_flops"`
	// EffectiveGFLOPS relates TotalFlops to the partials kernel's total wall
	// time.
	EffectiveGFLOPS float64 `json:"effective_gflops"`
	// Batches counts UpdatePartials invocations recorded since the last
	// reset.
	Batches uint64 `json:"batches"`
	// Kernels holds per-kernel-family stats, only for families with
	// recorded calls.
	Kernels []KernelStats `json:"kernels,omitempty"`
	// Levels are the most recent scheduler dependency-level traces, oldest
	// first (recorded by the leveled CPU strategies: futures and
	// thread-pool-hybrid).
	Levels []LevelTrace `json:"levels,omitempty"`
	// Backends holds per-backend utilization for multi-device instances
	// created with FlagRebalance: the current pattern slice and measured
	// throughput of each backend. Empty otherwise, so telemetry is
	// unchanged when rebalancing is off.
	Backends []BackendStats `json:"backends,omitempty"`
	// Rebalances and PatternsMigrated count executed repartitions and the
	// total patterns they moved (FlagRebalance instances only).
	Rebalances       int `json:"rebalances,omitempty"`
	PatternsMigrated int `json:"patterns_migrated,omitempty"`
	// RebalanceEvents is the retained repartition history, oldest first.
	RebalanceEvents []RebalanceEvent `json:"rebalance_events,omitempty"`
}

// BackendStats describes one backend of a rebalancing multi-device
// instance: its current contiguous pattern slice [Lo, Hi) and its measured
// throughput in pattern-operations per second (EWMA over UpdatePartials
// batches; 0 until the first batch).
type BackendStats struct {
	Lo         int     `json:"lo"`
	Hi         int     `json:"hi"`
	Patterns   int     `json:"patterns"`
	Throughput float64 `json:"throughput_pattern_ops_per_s"`
}

// RebalanceEvent records one executed repartition of a multi-device
// instance: the batch after which it ran, the partition boundaries before
// and after, how many patterns moved, and the modeled speedup that
// justified the move.
type RebalanceEvent struct {
	Batch            int     `json:"batch"`
	OldHi            []int   `json:"old_hi"`
	NewHi            []int   `json:"new_hi"`
	Migrated         int     `json:"migrated"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
}

// Kernel returns the stats recorded for one kernel family ("partials",
// "root", "edge", "matrices", "derivatives", "rescale"), or a zero value.
func (s Stats) Kernel(name string) KernelStats {
	for _, k := range s.Kernels {
		if k.Kernel == name {
			return k
		}
	}
	return KernelStats{Kernel: name}
}

// KernelStats aggregates one kernel family's recorded invocations.
type KernelStats struct {
	// Kernel names the family: "partials", "root", "edge", "matrices",
	// "derivatives" or "rescale".
	Kernel string `json:"kernel"`
	// Ops counts logical operations (individual partials operations across
	// all batches); Calls counts timed invocations — one per batch for
	// batched kernels, so Ops ≥ Calls.
	Ops   uint64 `json:"ops"`
	Calls uint64 `json:"calls"`
	// Total, Min and Max aggregate the per-invocation wall times.
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Histogram holds the non-empty log₂ duration buckets, ascending.
	Histogram []HistogramBucket `json:"histogram,omitempty"`
}

// MeanPerOp is the average wall time attributed to one logical operation.
func (k KernelStats) MeanPerOp() time.Duration {
	if k.Ops == 0 {
		return 0
	}
	return k.Total / time.Duration(k.Ops)
}

// MeanPerCall is the average wall time of one timed invocation.
func (k KernelStats) MeanPerCall() time.Duration {
	if k.Calls == 0 {
		return 0
	}
	return k.Total / time.Duration(k.Calls)
}

// HistogramBucket is one non-empty log₂ duration bucket: Count invocations
// took at most UpperBound (and longer than the previous bucket's bound).
type HistogramBucket struct {
	UpperBound time.Duration `json:"upper_bound_ns"`
	Count      uint64        `json:"count"`
}

// LevelTrace records one scheduler dependency level of an UpdatePartials
// batch: Ops independent operations dispatched as Tasks concurrent
// (operation, pattern-chunk) tasks, completing in Wall time. Batch is the
// 1-based batch number; Level indexes the dependency level within it.
type LevelTrace struct {
	Batch uint64        `json:"batch"`
	Level int           `json:"level"`
	Ops   int           `json:"ops"`
	Tasks int           `json:"tasks"`
	Wall  time.Duration `json:"wall_ns"`
}

// Stats returns the instance's telemetry snapshot. Safe to call while other
// goroutines drive the instance's sibling instances; note the instance
// itself is still single-goroutine for computation methods.
func (in *Instance) Stats() Stats {
	snap := in.tel.Snapshot()
	out := Stats{
		Implementation:  snap.Implementation,
		Strategy:        snap.Strategy,
		Enabled:         snap.Enabled,
		TotalFlops:      snap.TotalFlops,
		EffectiveGFLOPS: snap.EffectiveGFLOPS,
		Batches:         snap.Batches,
	}
	for _, ks := range snap.Kernels {
		pk := KernelStats{
			Kernel: ks.Kernel.String(),
			Ops:    ks.Ops,
			Calls:  ks.Calls,
			Total:  ks.Total,
			Min:    ks.Min,
			Max:    ks.Max,
		}
		for _, b := range ks.Histogram {
			pk.Histogram = append(pk.Histogram, HistogramBucket(b))
		}
		out.Kernels = append(out.Kernels, pk)
	}
	for _, lt := range snap.Levels {
		out.Levels = append(out.Levels, LevelTrace(lt))
	}
	if me, ok := in.eng.(*multiimpl.Engine); ok {
		if rs, enabled := me.RebalanceStats(); enabled {
			for i := range rs.Lo {
				out.Backends = append(out.Backends, BackendStats{
					Lo:         rs.Lo[i],
					Hi:         rs.Hi[i],
					Patterns:   rs.Hi[i] - rs.Lo[i],
					Throughput: rs.Throughput[i],
				})
			}
			out.Rebalances = rs.Rebalances
			out.PatternsMigrated = rs.PatternsMigrated
			for _, ev := range rs.Events {
				out.RebalanceEvents = append(out.RebalanceEvents, RebalanceEvent{
					Batch:            ev.Batch,
					OldHi:            ev.OldHi,
					NewHi:            ev.NewHi,
					Migrated:         ev.Migrated,
					PredictedSpeedup: ev.PredictedSpeedup,
				})
			}
		}
	}
	return out
}

// ReuseStats is a snapshot of the incremental re-evaluation counters of an
// instance created with FlagReuse: how many submitted partials operations and
// transition-matrix updates were skipped because their inputs were unchanged
// (hits) versus computed (misses), and how many buffer invalidations setters
// reported. An instance without FlagReuse yields Enabled == false and zero
// counters.
type ReuseStats struct {
	Enabled       bool   `json:"enabled"`
	OpHits        uint64 `json:"op_hits"`
	OpMisses      uint64 `json:"op_misses"`
	MatrixHits    uint64 `json:"matrix_hits"`
	MatrixMisses  uint64 `json:"matrix_misses"`
	Invalidations uint64 `json:"invalidations"`
}

// OpHitRate is the fraction of submitted partials operations skipped, in
// [0, 1]; 0 when none were submitted.
func (s ReuseStats) OpHitRate() float64 {
	if t := s.OpHits + s.OpMisses; t > 0 {
		return float64(s.OpHits) / float64(t)
	}
	return 0
}

// MatrixHitRate is the fraction of requested transition-matrix updates
// skipped, in [0, 1]; 0 when none were requested.
func (s ReuseStats) MatrixHitRate() float64 {
	if t := s.MatrixHits + s.MatrixMisses; t > 0 {
		return float64(s.MatrixHits) / float64(t)
	}
	return 0
}

// ReuseStats returns the instance's incremental re-evaluation counters.
// Counters accumulate over the instance's lifetime; on multi-device
// instances they cover the whole instance (every backend makes identical
// skip decisions, see multiimpl).
func (in *Instance) ReuseStats() ReuseStats {
	if r, ok := in.eng.(interface{ ReuseStats() reuse.Stats }); ok {
		s := r.ReuseStats()
		return ReuseStats{
			Enabled:       s.Enabled,
			OpHits:        s.OpHits,
			OpMisses:      s.OpMisses,
			MatrixHits:    s.MatrixHits,
			MatrixMisses:  s.MatrixMisses,
			Invalidations: s.Invalidations,
		}
	}
	return ReuseStats{}
}

// ResetStats clears all telemetry counters, histograms, the flop accumulator
// and the level-trace ring; the enabled switch is unchanged.
func (in *Instance) ResetStats() { in.tel.Reset() }

// EnableTelemetry switches collection on or off at runtime. Disabled
// collection costs a single atomic load per instrumented call.
func (in *Instance) EnableTelemetry(on bool) { in.tel.SetEnabled(on) }

// TelemetryEnabled reports whether collection is currently on.
func (in *Instance) TelemetryEnabled() bool { return in.tel.Enabled() }

// strategyName derives the reported scheduling-strategy label from the
// instance flags (CPU resources only; device-backed instances report
// "device" and multi-device instances "multi-device").
func strategyName(flags Flags) string {
	switch {
	case flags&FlagThreadingThreadPoolHybrid != 0:
		return "thread-pool-hybrid"
	case flags&FlagThreadingThreadPool != 0:
		return "thread-pool"
	case flags&FlagThreadingThreadCreate != 0:
		return "thread-create"
	case flags&FlagThreadingFutures != 0:
		return "futures"
	case flags&FlagVectorSSE != 0:
		return "sse"
	default:
		return "serial"
	}
}

// newInstanceCollector builds the collector every instance carries: always
// present so telemetry can be toggled at runtime, enabled only when
// FlagTelemetry is set.
func newInstanceCollector(flags Flags) *telemetry.Collector {
	tel := telemetry.New()
	tel.SetEnabled(flags&FlagTelemetry != 0)
	return tel
}
